//! Information inequalities and max-information inequalities.
//!
//! Problem 2.4 (IIP): given integer coefficients `c_X`, decide whether
//! `0 ≤ Σ_X c_X h(X)` holds for every entropic function.  Problem 2.5
//! (Max-IIP): the same with a maximum of `k` linear expressions on the right.
//! These two types are thin syntactic wrappers around [`EntropyExpr`] that fix
//! the variable universe explicitly (an inequality may mention `h(V)` for a
//! universe larger than the variables appearing in its terms).

use bqc_arith::Rational;
use bqc_entropy::{EntropyExpr, SetFunction};
use std::collections::BTreeSet;
use std::fmt;

/// A linear information inequality `0 ≤ E(h)` over an explicit universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearInequality {
    /// The variable universe `V` (ordered).
    pub variables: Vec<String>,
    /// The expression `E`.
    pub expr: EntropyExpr,
}

impl LinearInequality {
    /// Creates an inequality, checking that every mentioned variable belongs
    /// to the declared universe.
    ///
    /// # Panics
    ///
    /// Panics if the expression mentions a variable outside `variables`.
    pub fn new(variables: Vec<String>, expr: EntropyExpr) -> LinearInequality {
        let universe: BTreeSet<&String> = variables.iter().collect();
        for v in expr.variables() {
            assert!(
                universe.contains(&v),
                "expression variable {v} not in the declared universe"
            );
        }
        LinearInequality { variables, expr }
    }

    /// Builds an inequality directly from `(coefficient, subset)` pairs.
    pub fn from_terms(
        variables: Vec<String>,
        terms: impl IntoIterator<Item = (Rational, Vec<String>)>,
    ) -> LinearInequality {
        let mut expr = EntropyExpr::zero();
        for (coeff, set) in terms {
            expr.add_term(coeff, set);
        }
        LinearInequality::new(variables, expr)
    }

    /// Evaluates the right-hand side on a set function.
    pub fn evaluate(&self, h: &SetFunction) -> Rational {
        self.expr.evaluate(h)
    }

    /// `true` iff the inequality holds on the given set function.
    pub fn holds_on(&self, h: &SetFunction) -> bool {
        !self.evaluate(h).is_negative()
    }

    /// Views this inequality as a single-disjunct max-inequality.
    pub fn to_max(&self) -> MaxInequality {
        MaxInequality {
            variables: self.variables.clone(),
            disjuncts: vec![self.expr.clone()],
        }
    }
}

impl fmt::Display for LinearInequality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0 <= {}", self.expr)
    }
}

/// A max-information inequality `0 ≤ max_ℓ E_ℓ(h)` over an explicit universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaxInequality {
    /// The variable universe `V` (ordered).
    pub variables: Vec<String>,
    /// The disjuncts `E_1, …, E_k`.
    pub disjuncts: Vec<EntropyExpr>,
}

impl MaxInequality {
    /// Creates a max-inequality, checking variable scoping.
    ///
    /// # Panics
    ///
    /// Panics if a disjunct mentions a variable outside the universe, or if
    /// there are no disjuncts.
    pub fn new(variables: Vec<String>, disjuncts: Vec<EntropyExpr>) -> MaxInequality {
        assert!(
            !disjuncts.is_empty(),
            "a max-inequality needs at least one disjunct"
        );
        let universe: BTreeSet<&String> = variables.iter().collect();
        for d in &disjuncts {
            for v in d.variables() {
                assert!(
                    universe.contains(&v),
                    "expression variable {v} not in the declared universe"
                );
            }
        }
        MaxInequality {
            variables,
            disjuncts,
        }
    }

    /// Number of disjuncts `k`.
    pub fn num_disjuncts(&self) -> usize {
        self.disjuncts.len()
    }

    /// Evaluates `max_ℓ E_ℓ(h)`.
    pub fn evaluate(&self, h: &SetFunction) -> Rational {
        self.disjuncts
            .iter()
            .map(|d| d.evaluate(h))
            .max()
            .expect("at least one disjunct")
    }

    /// `true` iff the inequality holds on the given set function.
    pub fn holds_on(&self, h: &SetFunction) -> bool {
        !self.evaluate(h).is_negative()
    }
}

impl fmt::Display for MaxInequality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0 <= max(")?;
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " , ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::int;

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn submodularity_xy() -> LinearInequality {
        // h(X) + h(Y) - h(XY) >= 0 over {X, Y}.
        LinearInequality::from_terms(
            vars(&["X", "Y"]),
            vec![
                (int(1), vec!["X".into()]),
                (int(1), vec!["Y".into()]),
                (int(-1), vec!["X".into(), "Y".into()]),
            ],
        )
    }

    #[test]
    fn evaluate_linear() {
        let ineq = submodularity_xy();
        let independent =
            SetFunction::from_values(vars(&["X", "Y"]), vec![int(0), int(1), int(1), int(2)]);
        assert_eq!(ineq.evaluate(&independent), int(0));
        assert!(ineq.holds_on(&independent));
        let correlated =
            SetFunction::from_values(vars(&["X", "Y"]), vec![int(0), int(1), int(1), int(1)]);
        assert_eq!(ineq.evaluate(&correlated), int(1));
    }

    #[test]
    fn evaluate_max() {
        // 0 <= max( h(X) - h(Y), h(Y) - h(X) ): holds everywhere.
        let e1 = {
            let mut e = EntropyExpr::zero();
            e.add_term(int(1), ["X"]);
            e.add_term(int(-1), ["Y"]);
            e
        };
        let e2 = e1.negate();
        let max = MaxInequality::new(vars(&["X", "Y"]), vec![e1, e2]);
        let skewed =
            SetFunction::from_values(vars(&["X", "Y"]), vec![int(0), int(3), int(1), int(3)]);
        assert_eq!(max.evaluate(&skewed), int(2));
        assert!(max.holds_on(&skewed));
        assert_eq!(max.num_disjuncts(), 2);
    }

    #[test]
    fn universe_can_exceed_mentioned_variables() {
        let ineq =
            LinearInequality::from_terms(vars(&["X", "Y", "Z"]), vec![(int(1), vec!["X".into()])]);
        assert_eq!(ineq.variables.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not in the declared universe")]
    fn out_of_universe_variable_panics() {
        LinearInequality::from_terms(vars(&["X"]), vec![(int(1), vec!["Q".into()])]);
    }

    #[test]
    fn linear_to_max_roundtrip() {
        let ineq = submodularity_xy();
        let max = ineq.to_max();
        assert_eq!(max.num_disjuncts(), 1);
        let h = SetFunction::from_values(vars(&["X", "Y"]), vec![int(0), int(1), int(1), int(1)]);
        assert_eq!(max.evaluate(&h), ineq.evaluate(&h));
    }

    #[test]
    fn display() {
        let ineq = submodularity_xy();
        let text = ineq.to_string();
        assert!(text.starts_with("0 <= "));
        assert!(ineq.to_max().to_string().contains("max("));
    }
}
