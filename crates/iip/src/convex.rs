//! Theorem 6.1 (Shannon-cone version): a valid max-linear inequality is
//! witnessed by a convex combination.
//!
//! Theorem 6.1 states that `0 ≤ max_ℓ E_ℓ(h)` holds for every (almost-)
//! entropic `h` iff there are `λ_ℓ ≥ 0`, `Σ λ_ℓ = 1`, such that the single
//! linear inequality `0 ≤ Σ_ℓ λ_ℓ E_ℓ(h)` is valid.  The theorem is proved for
//! any closed convex cone (Theorem F.1); this module instantiates it for the
//! **polymatroid** cone `Γ_n`, where both directions are effectively
//! computable:
//!
//! * a convex combination that is a non-negative combination of elemental
//!   Shannon inequalities certifies validity over `Γ_n`;
//! * conversely, if the max-inequality is valid over `Γ_n`, LP duality
//!   (Farkas) guarantees such a combination exists with rational `λ`.
//!
//! The search is a single LP feasibility problem over the unknowns
//! `λ_ℓ` and the multipliers `μ_k` of the elemental inequalities (plus
//! multipliers `ν_S ≥ 0` of the variable bounds `h(S) ≥ 0`).

use crate::inequality::MaxInequality;
use bqc_arith::Rational;
use bqc_entropy::{all_masks, elemental_ids, ElementalId, Mask, SetFunction};
use bqc_lp::{ConstraintOp, LpProblem, LpStatus, Sense, VarBound, VarId};
use std::collections::HashMap;

/// A certificate that `Σ_ℓ λ_ℓ E_ℓ` is a Shannon inequality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvexCertificate {
    /// The convex weights, one per disjunct (non-negative, summing to one).
    pub lambdas: Vec<Rational>,
}

/// The two-sided answer of the certificate LP: either an explicit Farkas
/// certificate of validity over `Γ_n`, or an explicit violating polymatroid.
#[derive(Clone, Debug)]
pub(crate) enum CertificateOutcome {
    /// Convex weights mixing the disjuncts into a Shannon inequality.
    Certificate {
        /// The convex weights over the disjuncts.
        certificate: ConvexCertificate,
        /// The elemental inequalities carrying nonzero multipliers in the
        /// Farkas proof.  Seeding a `Γ_n` relaxation with exactly these rows
        /// makes it infeasible outright (the proof combines only them), so
        /// the separation loop caches this set for same-shaped re-probes.
        support: Vec<ElementalId>,
    },
    /// A polymatroid `h` with `E_ℓ(h) ≤ −1` for every disjunct.
    Counterexample(SetFunction),
}

/// Decides validity over `Γ_n` through the **certificate LP** of
/// Theorem 6.1, in the primal-dual form that answers both directions:
///
/// ```text
///   maximize  Σ_ℓ μ_ℓ
///   s.t.      Σ_ℓ μ_ℓ E_{ℓ,S} − Σ_k λ_k a_{k,S} − ν_S = 0   for every S ≠ ∅
///             Σ_ℓ μ_ℓ ≤ 1,          μ, λ, ν ≥ 0
/// ```
///
/// where `a_k` ranges over the elemental inequalities of `Γ_n` and `ν`
/// carries the variable bounds `h(S) ≥ 0`.  The system is homogeneous
/// except for the cap, so the optimum is exactly 1 (some convex combination
/// `Σ μ_ℓ E_ℓ` is a non-negative combination of elemental rows — a Farkas
/// proof of validity) or exactly 0 (no such combination).  In the latter
/// case the **dual vector** at the optimum is the refutation: dual
/// feasibility of the `λ` columns puts `h = −y` inside `Γ_n`, of the `ν`
/// columns makes it non-negative, and of the `μ` columns forces
/// `E_ℓ(h) ≤ θ − 1 = −1` for every disjunct — precisely the violating
/// polymatroid, already normalized.
///
/// The LP has `2^n` rows — compare `n + C(n,2)·2^{n−2}` for the row-eager
/// cone — which is what makes this the fast path for **valid** inequalities
/// whose certificates touch many elemental rows (the separation loop in
/// `prover` excels at shallow certificates and at refutations, and
/// escalates here when a probe runs deep).
pub(crate) fn certificate_decision(inequality: &MaxInequality) -> CertificateOutcome {
    let variables = &inequality.variables;
    let n = variables.len();
    let index_of: HashMap<&str, usize> = variables
        .iter()
        .enumerate()
        .map(|(index, name)| (name.as_str(), index))
        .collect();
    let masks = 1usize << n;

    let mut lp = LpProblem::new(Sense::Maximize);
    // One μ per disjunct, then one λ per elemental inequality, then one ν
    // per non-empty subset; rows are assembled per mask.
    let mu: Vec<VarId> = (0..inequality.disjuncts.len())
        .map(|_| lp.add_variable_anonymous(VarBound::NonNegative))
        .collect();
    lp.set_objective(mu.iter().map(|&v| (v, Rational::one())).collect::<Vec<_>>());

    let mut rows: Vec<Vec<(VarId, Rational)>> = vec![Vec::new(); masks];
    for (l, disjunct) in inequality.disjuncts.iter().enumerate() {
        let mut dense = vec![Rational::zero(); masks];
        for (set, coeff) in disjunct.terms() {
            let mut mask: Mask = 0;
            for v in set {
                mask |= 1 << index_of[v.as_str()];
            }
            dense[mask as usize] = &dense[mask as usize] + coeff;
        }
        for (mask, coeff) in dense.into_iter().enumerate() {
            if mask != 0 && !coeff.is_zero() {
                rows[mask].push((mu[l], coeff));
            }
        }
    }
    let mut lambda_vars: Vec<(VarId, ElementalId)> = Vec::new();
    for id in elemental_ids(n) {
        let lambda = lp.add_variable_anonymous(VarBound::NonNegative);
        lambda_vars.push((lambda, id));
        let (terms, len) = id.terms(n);
        for (mask, coeff) in &terms[..len] {
            if *mask != 0 && *coeff != 0 {
                rows[*mask as usize].push((lambda, Rational::from_integer(-*coeff)));
            }
        }
    }

    // Per-mask balance rows, in ascending mask order (row index = mask − 1).
    for mask in all_masks(n) {
        if mask == 0 {
            continue;
        }
        let nu = lp.add_variable_anonymous(VarBound::NonNegative);
        let mut coeffs = std::mem::take(&mut rows[mask as usize]);
        coeffs.push((nu, -Rational::one()));
        lp.add_constraint(coeffs, ConstraintOp::Eq, Rational::zero());
    }
    lp.add_constraint(
        mu.iter().map(|&v| (v, Rational::one())).collect::<Vec<_>>(),
        ConstraintOp::Le,
        Rational::one(),
    );

    let solution = lp.solve_with_duals();
    assert_eq!(
        solution.status,
        LpStatus::Optimal,
        "the certificate LP is feasible (0) and bounded (cap)"
    );
    let optimum = solution.objective.clone().expect("optimal objective");
    if optimum == Rational::one() {
        let lambdas = mu.iter().map(|&v| solution.values[v.0].clone()).collect();
        let support = lambda_vars
            .iter()
            .filter(|(var, _)| !solution.values[var.0].is_zero())
            .map(|(_, id)| *id)
            .collect();
        return CertificateOutcome::Certificate {
            certificate: ConvexCertificate { lambdas },
            support,
        };
    }
    assert!(
        optimum.is_zero(),
        "homogeneity forces the certificate optimum to 0 or 1"
    );
    let duals = solution
        .duals
        .expect("optimal solves report dual multipliers");
    let mut values = vec![Rational::zero(); masks];
    for mask in 1..masks {
        values[mask] = -&duals[mask - 1];
    }
    CertificateOutcome::Counterexample(SetFunction::from_values(variables.clone(), values))
}

/// Searches for convex weights `λ` such that `Σ_ℓ λ_ℓ E_ℓ(h) ≥ 0` holds for
/// every polymatroid.  By Theorem 6.1 (specialized to `Γ_n`) such weights
/// exist exactly when the max-inequality is valid over `Γ_n`.
pub fn find_convex_certificate(inequality: &MaxInequality) -> Option<ConvexCertificate> {
    certificate_or_refutation(inequality).ok()
}

/// Decides validity over `Γ_n` with an **explicit witness either way**: a
/// convex certificate when the max-inequality is valid (Theorem 6.1), or a
/// violating polymatroid — already normalized to `E_ℓ(h) ≤ −1` on every
/// disjunct — when it is not (the Farkas dual of the certificate LP).
pub fn certificate_or_refutation(
    inequality: &MaxInequality,
) -> Result<ConvexCertificate, SetFunction> {
    match certificate_decision(inequality) {
        CertificateOutcome::Certificate { certificate, .. } => Ok(certificate),
        CertificateOutcome::Counterexample(counterexample) => Err(counterexample),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inequality::LinearInequality;
    use crate::prover::check_max_inequality;
    use bqc_arith::int;
    use bqc_entropy::EntropyExpr;

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn expr(terms: &[(i64, &[&str])]) -> EntropyExpr {
        let mut e = EntropyExpr::zero();
        for (coeff, set) in terms {
            e.add_term(int(*coeff), set.iter().copied());
        }
        e
    }

    #[test]
    fn valid_linear_inequality_has_trivial_certificate() {
        let ineq = LinearInequality::new(
            vars(&["X", "Y"]),
            expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]),
        );
        let cert = find_convex_certificate(&ineq.to_max()).expect("certificate must exist");
        assert_eq!(cert.lambdas, vec![int(1)]);
    }

    #[test]
    fn symmetric_max_inequality_mixes_disjuncts() {
        // max(h(X)-h(Y), h(Y)-h(X)) >= 0: λ = (1/2, 1/2) gives the zero
        // expression, which is trivially Shannon.
        let d1 = expr(&[(1, &["X"]), (-1, &["Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X"])]);
        let max = MaxInequality::new(vars(&["X", "Y"]), vec![d1, d2]);
        let cert = find_convex_certificate(&max).expect("certificate must exist");
        let total: Rational = cert.lambdas.iter().sum();
        assert_eq!(total, int(1));
        assert!(cert.lambdas.iter().all(|l| !l.is_negative()));
        // The combined expression must indeed be Shannon-valid.
        let mut combined = EntropyExpr::zero();
        for (l, d) in cert.lambdas.iter().zip(&max.disjuncts) {
            combined = combined.add(&d.scale(l));
        }
        let combined_ineq = LinearInequality::new(vars(&["X", "Y"]), combined);
        assert!(crate::prover::check_linear_inequality(&combined_ineq).is_valid());
    }

    #[test]
    fn example_3_8_has_a_certificate() {
        // The paper proves Example 3.8 by averaging the three disjuncts with
        // weight 1/3 each; the LP may find that or any other valid mixture.
        let universe = vars(&["X1", "X2", "X3"]);
        let make = |top: &[&str], y: &str, x: &str| {
            let mut e = EntropyExpr::zero();
            e.add_term(int(1), top.iter().copied());
            e.add_conditional(int(1), &bqc_entropy::varset([y]), &bqc_entropy::varset([x]));
            e.add_term(int(-1), ["X1", "X2", "X3"]);
            e
        };
        let max = MaxInequality::new(
            universe.clone(),
            vec![
                make(&["X1", "X2"], "X2", "X1"),
                make(&["X2", "X3"], "X3", "X2"),
                make(&["X1", "X3"], "X1", "X3"),
            ],
        );
        assert!(check_max_inequality(&max).is_valid());
        let cert = find_convex_certificate(&max).expect("certificate must exist");
        let total: Rational = cert.lambdas.iter().sum();
        assert_eq!(total, int(1));
        // Verify the mixture is Shannon-valid.
        let mut combined = EntropyExpr::zero();
        for (l, d) in cert.lambdas.iter().zip(&max.disjuncts) {
            combined = combined.add(&d.scale(l));
        }
        assert!(
            crate::prover::check_linear_inequality(&LinearInequality::new(universe, combined))
                .is_valid()
        );
    }

    #[test]
    fn invalid_inequalities_have_no_certificate() {
        let d1 = expr(&[(1, &["X"]), (-1, &["X", "Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X", "Y"])]);
        let max = MaxInequality::new(vars(&["X", "Y"]), vec![d1, d2]);
        assert!(!check_max_inequality(&max).is_valid());
        assert!(find_convex_certificate(&max).is_none());
    }

    #[test]
    fn certificate_duals_are_violating_polymatroids() {
        // When the certificate LP tops out at 0, its dual vector must be a
        // genuine polymatroid on which every disjunct evaluates <= -1 (the
        // Farkas refutation the prover's escalation path relies on).
        let universe = vars(&["X", "Y", "Z"]);
        let cases = vec![
            vec![expr(&[(1, &["X"]), (-1, &["Y"])])],
            vec![expr(&[(1, &["X", "Y"]), (-1, &["X"]), (-1, &["Y"])])],
            vec![
                expr(&[(1, &["X"]), (-1, &["X", "Y"])]),
                expr(&[(1, &["Y"]), (-1, &["X", "Y"])]),
            ],
            vec![expr(&[(1, &["Z"]), (-1, &["X", "Y", "Z"])])],
        ];
        for disjuncts in cases {
            let max = MaxInequality::new(universe.clone(), disjuncts);
            match certificate_decision(&max) {
                CertificateOutcome::Counterexample(h) => {
                    assert!(bqc_entropy::is_polymatroid(&h));
                    for d in &max.disjuncts {
                        assert!(d.evaluate(&h) <= -int(1), "disjunct {d} not refuted");
                    }
                }
                CertificateOutcome::Certificate { .. } => {
                    panic!("these inequalities are invalid over the cone")
                }
            }
        }
    }

    #[test]
    fn certificate_support_seeds_an_infeasible_relaxation() {
        // The support rows of a valid inequality's certificate must by
        // themselves refute every candidate violator: a cone relaxation
        // holding only those rows plus the disjunct rows is infeasible.
        let ineq = LinearInequality::new(
            vars(&["X", "Y", "Z"]),
            expr(&[
                (1, &["X", "Z"]),
                (1, &["Y", "Z"]),
                (-1, &["X", "Y", "Z"]),
                (-1, &["Z"]),
            ]),
        );
        let max = ineq.to_max();
        let CertificateOutcome::Certificate {
            certificate,
            support,
        } = certificate_decision(&max)
        else {
            panic!("conditional submodularity is valid");
        };
        let total: Rational = certificate.lambdas.iter().sum();
        assert_eq!(total, int(1));
        assert!(!support.is_empty());
        use bqc_lp::{ConstraintOp, LpProblem, Sense, VarBound};
        let mut lp = LpProblem::new(Sense::Minimize);
        let n = 3usize;
        let columns: Vec<_> = (0..(1usize << n))
            .map(|mask| (mask != 0).then(|| lp.add_variable_anonymous(VarBound::NonNegative)))
            .collect();
        for id in &support {
            let (terms, len) = id.terms(n);
            lp.add_constraint_small(
                terms[..len]
                    .iter()
                    .filter_map(|(m, c)| columns[*m as usize].map(|v| (v, *c))),
                ConstraintOp::Ge,
                0,
            );
        }
        // The disjunct E <= -1 over the same columns.
        let mut dense = vec![Rational::zero(); 1 << n];
        for (set, coeff) in max.disjuncts[0].terms() {
            let mut mask = 0usize;
            for v in set {
                mask |= 1 << ["X", "Y", "Z"].iter().position(|x| x == v).unwrap();
            }
            dense[mask] = &dense[mask] + coeff;
        }
        lp.add_constraint(
            dense
                .iter()
                .enumerate()
                .filter_map(|(m, c)| columns[m].map(|v| (v, c.clone()))),
            ConstraintOp::Le,
            -Rational::one(),
        );
        assert!(!lp.is_feasible());
    }

    #[test]
    fn certificate_existence_matches_validity() {
        // Agreement between the two decision procedures on a small batch.
        let universe = vars(&["X", "Y", "Z"]);
        let candidates = [
            expr(&[(1, &["X", "Y"]), (-1, &["X"])]),
            expr(&[(1, &["X"]), (-1, &["X", "Y", "Z"])]),
            expr(&[
                (1, &["X", "Z"]),
                (1, &["Y", "Z"]),
                (-1, &["X", "Y", "Z"]),
                (-1, &["Z"]),
            ]),
            expr(&[(2, &["X"]), (-1, &["Y"]), (-1, &["Z"])]),
        ];
        for (i, a) in candidates.iter().enumerate() {
            for b in candidates.iter().skip(i) {
                let max = MaxInequality::new(universe.clone(), vec![a.clone(), b.clone()]);
                let valid = check_max_inequality(&max).is_valid();
                let has_cert = find_convex_certificate(&max).is_some();
                assert_eq!(valid, has_cert, "mismatch for disjuncts {a} and {b}");
            }
        }
    }
}
