//! Theorem 6.1 (Shannon-cone version): a valid max-linear inequality is
//! witnessed by a convex combination.
//!
//! Theorem 6.1 states that `0 ≤ max_ℓ E_ℓ(h)` holds for every (almost-)
//! entropic `h` iff there are `λ_ℓ ≥ 0`, `Σ λ_ℓ = 1`, such that the single
//! linear inequality `0 ≤ Σ_ℓ λ_ℓ E_ℓ(h)` is valid.  The theorem is proved for
//! any closed convex cone (Theorem F.1); this module instantiates it for the
//! **polymatroid** cone `Γ_n`, where both directions are effectively
//! computable:
//!
//! * a convex combination that is a non-negative combination of elemental
//!   Shannon inequalities certifies validity over `Γ_n`;
//! * conversely, if the max-inequality is valid over `Γ_n`, LP duality
//!   (Farkas) guarantees such a combination exists with rational `λ`.
//!
//! The search is a single LP feasibility problem over the unknowns
//! `λ_ℓ` and the multipliers `μ_k` of the elemental inequalities (plus
//! multipliers `ν_S ≥ 0` of the variable bounds `h(S) ≥ 0`).

use crate::inequality::MaxInequality;
use bqc_arith::Rational;
use bqc_entropy::{all_masks, elemental_inequalities, Mask};
use bqc_lp::{ConstraintOp, LpProblem, LpStatus, Sense, VarBound};

/// A certificate that `Σ_ℓ λ_ℓ E_ℓ` is a Shannon inequality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvexCertificate {
    /// The convex weights, one per disjunct (non-negative, summing to one).
    pub lambdas: Vec<Rational>,
}

/// Searches for convex weights `λ` such that `Σ_ℓ λ_ℓ E_ℓ(h) ≥ 0` holds for
/// every polymatroid.  By Theorem 6.1 (specialized to `Γ_n`) such weights
/// exist exactly when the max-inequality is valid over `Γ_n`.
pub fn find_convex_certificate(inequality: &MaxInequality) -> Option<ConvexCertificate> {
    let variables = &inequality.variables;
    let n = variables.len();
    let index_of = |name: &str| -> usize {
        variables
            .iter()
            .position(|v| v == name)
            .expect("variable in universe")
    };

    // Dense coefficient vectors of the disjuncts, indexed by subset mask.
    let disjunct_coeffs: Vec<Vec<Rational>> = inequality
        .disjuncts
        .iter()
        .map(|d| {
            let mut dense = vec![Rational::zero(); 1 << n];
            for (set, coeff) in d.terms() {
                let mut mask: Mask = 0;
                for v in set {
                    mask |= 1 << index_of(v);
                }
                dense[mask as usize] = &dense[mask as usize] + coeff;
            }
            dense
        })
        .collect();

    let elementals = elemental_inequalities(n);

    let mut lp = LpProblem::new(Sense::Minimize);
    let lambda: Vec<_> = (0..inequality.disjuncts.len())
        .map(|l| lp.add_variable(format!("lambda{l}"), VarBound::NonNegative))
        .collect();
    let mu: Vec<_> = (0..elementals.len())
        .map(|k| lp.add_variable(format!("mu{k}"), VarBound::NonNegative))
        .collect();
    let nu: Vec<_> = (1usize..(1 << n))
        .map(|s| lp.add_variable(format!("nu{s}"), VarBound::NonNegative))
        .collect();

    // Σ λ_ℓ = 1.
    lp.add_constraint(
        lambda
            .iter()
            .map(|&v| (v, Rational::one()))
            .collect::<Vec<_>>(),
        ConstraintOp::Eq,
        Rational::one(),
    );

    // For every non-empty subset S:
    //   Σ_ℓ λ_ℓ c_{ℓ,S} − Σ_k μ_k a_{k,S} − ν_S = 0.
    for mask in all_masks(n) {
        if mask == 0 {
            continue;
        }
        let mut coeffs: Vec<(bqc_lp::VarId, Rational)> = Vec::new();
        for (l, dense) in disjunct_coeffs.iter().enumerate() {
            let c = &dense[mask as usize];
            if !c.is_zero() {
                coeffs.push((lambda[l], c.clone()));
            }
        }
        for (k, elemental) in elementals.iter().enumerate() {
            for (m, a) in &elemental.terms {
                if *m == mask && !a.is_zero() {
                    coeffs.push((mu[k], -a));
                }
            }
        }
        coeffs.push((nu[mask as usize - 1], -Rational::one()));
        lp.add_constraint(coeffs, ConstraintOp::Eq, Rational::zero());
    }

    let solution = lp.solve();
    if solution.status != LpStatus::Optimal {
        return None;
    }
    let lambdas = lambda
        .iter()
        .map(|&v| solution.values[v.0].clone())
        .collect();
    Some(ConvexCertificate { lambdas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inequality::LinearInequality;
    use crate::prover::check_max_inequality;
    use bqc_arith::int;
    use bqc_entropy::EntropyExpr;

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn expr(terms: &[(i64, &[&str])]) -> EntropyExpr {
        let mut e = EntropyExpr::zero();
        for (coeff, set) in terms {
            e.add_term(int(*coeff), set.iter().copied());
        }
        e
    }

    #[test]
    fn valid_linear_inequality_has_trivial_certificate() {
        let ineq = LinearInequality::new(
            vars(&["X", "Y"]),
            expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]),
        );
        let cert = find_convex_certificate(&ineq.to_max()).expect("certificate must exist");
        assert_eq!(cert.lambdas, vec![int(1)]);
    }

    #[test]
    fn symmetric_max_inequality_mixes_disjuncts() {
        // max(h(X)-h(Y), h(Y)-h(X)) >= 0: λ = (1/2, 1/2) gives the zero
        // expression, which is trivially Shannon.
        let d1 = expr(&[(1, &["X"]), (-1, &["Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X"])]);
        let max = MaxInequality::new(vars(&["X", "Y"]), vec![d1, d2]);
        let cert = find_convex_certificate(&max).expect("certificate must exist");
        let total: Rational = cert.lambdas.iter().sum();
        assert_eq!(total, int(1));
        assert!(cert.lambdas.iter().all(|l| !l.is_negative()));
        // The combined expression must indeed be Shannon-valid.
        let mut combined = EntropyExpr::zero();
        for (l, d) in cert.lambdas.iter().zip(&max.disjuncts) {
            combined = combined.add(&d.scale(l));
        }
        let combined_ineq = LinearInequality::new(vars(&["X", "Y"]), combined);
        assert!(crate::prover::check_linear_inequality(&combined_ineq).is_valid());
    }

    #[test]
    fn example_3_8_has_a_certificate() {
        // The paper proves Example 3.8 by averaging the three disjuncts with
        // weight 1/3 each; the LP may find that or any other valid mixture.
        let universe = vars(&["X1", "X2", "X3"]);
        let make = |top: &[&str], y: &str, x: &str| {
            let mut e = EntropyExpr::zero();
            e.add_term(int(1), top.iter().copied());
            e.add_conditional(int(1), &bqc_entropy::varset([y]), &bqc_entropy::varset([x]));
            e.add_term(int(-1), ["X1", "X2", "X3"]);
            e
        };
        let max = MaxInequality::new(
            universe.clone(),
            vec![
                make(&["X1", "X2"], "X2", "X1"),
                make(&["X2", "X3"], "X3", "X2"),
                make(&["X1", "X3"], "X1", "X3"),
            ],
        );
        assert!(check_max_inequality(&max).is_valid());
        let cert = find_convex_certificate(&max).expect("certificate must exist");
        let total: Rational = cert.lambdas.iter().sum();
        assert_eq!(total, int(1));
        // Verify the mixture is Shannon-valid.
        let mut combined = EntropyExpr::zero();
        for (l, d) in cert.lambdas.iter().zip(&max.disjuncts) {
            combined = combined.add(&d.scale(l));
        }
        assert!(
            crate::prover::check_linear_inequality(&LinearInequality::new(universe, combined))
                .is_valid()
        );
    }

    #[test]
    fn invalid_inequalities_have_no_certificate() {
        let d1 = expr(&[(1, &["X"]), (-1, &["X", "Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X", "Y"])]);
        let max = MaxInequality::new(vars(&["X", "Y"]), vec![d1, d2]);
        assert!(!check_max_inequality(&max).is_valid());
        assert!(find_convex_certificate(&max).is_none());
    }

    #[test]
    fn certificate_existence_matches_validity() {
        // Agreement between the two decision procedures on a small batch.
        let universe = vars(&["X", "Y", "Z"]);
        let candidates = [
            expr(&[(1, &["X", "Y"]), (-1, &["X"])]),
            expr(&[(1, &["X"]), (-1, &["X", "Y", "Z"])]),
            expr(&[
                (1, &["X", "Z"]),
                (1, &["Y", "Z"]),
                (-1, &["X", "Y", "Z"]),
                (-1, &["Z"]),
            ]),
            expr(&[(2, &["X"]), (-1, &["Y"]), (-1, &["Z"])]),
        ];
        for (i, a) in candidates.iter().enumerate() {
            for b in candidates.iter().skip(i) {
                let max = MaxInequality::new(universe.clone(), vec![a.clone(), b.clone()]);
                let valid = check_max_inequality(&max).is_valid();
                let has_cert = find_convex_certificate(&max).is_some();
                assert_eq!(valid, has_cert, "mismatch for disjuncts {a} and {b}");
            }
        }
    }
}
