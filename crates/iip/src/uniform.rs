//! Uniform max-information inequalities and the reduction of Lemma 5.3.
//!
//! Section 5.1: an expression is *(n, p, q)-uniform* when it has the shape
//!
//! ```text
//!     E(h) = n·h(U) + Σ_{j=0..p} h(Y_j | X_j) − q·h(V)
//! ```
//!
//! over the full variable set `V` (which includes the distinguished variable
//! `U`), subject to the **chain condition** (`X_0 = ∅` and
//! `X_j ⊆ Y_{j−1} ∩ Y_j`) and the **connectedness condition** (`U ∈ X_j` for
//! `j ≥ 1`).  A Uniform-Max-IIP is a max-inequality all of whose disjuncts are
//! `(n, p, q)`-uniform with the *same* `n`, `p`, `q` and `U`.
//!
//! [`uniformize`] implements Lemma 5.3: every Max-IIP with integer
//! coefficients is transformed, in polynomial time, into an equivalent
//! Uniform-Max-IIP over one extra variable.  The uniform shape is exactly what
//! the query construction of Section 5.3 (in `bqc-core`) consumes.

use crate::inequality::MaxInequality;
use bqc_arith::{BigInt, Rational};
use bqc_entropy::{EntropyExpr, VarSet};
use std::collections::BTreeSet;
use std::fmt;

/// One `(n, p, q)`-uniform expression: `n·h(U) + Σ_j h(Y_j|X_j) − q·h(V)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UniformExpression {
    /// The multiplier of `h(U)`.
    pub head_count: usize,
    /// The chain `(Y_0, X_0), …, (Y_p, X_p)`.
    pub chain: Vec<(VarSet, VarSet)>,
}

impl UniformExpression {
    /// Flattens into a plain [`EntropyExpr`] over the given universe
    /// (`universe` = all variables including the distinguished one), with the
    /// trailing `− q·h(V)` term included.
    pub fn to_expr(&self, distinguished: &str, universe: &[String], q: usize) -> EntropyExpr {
        let mut expr = EntropyExpr::zero();
        expr.add_term(Rational::from(self.head_count as i64), [distinguished]);
        for (y, x) in &self.chain {
            expr.add_conditional(Rational::one(), y, x);
        }
        expr.add_term(Rational::from(-(q as i64)), universe.iter().cloned());
        expr
    }
}

/// A Uniform-Max-IIP: `0 ≤ max_ℓ E_ℓ(h)` with every `E_ℓ` uniform for the
/// same parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UniformMaxIip {
    /// The original variables `V` (not including the distinguished variable).
    pub variables: Vec<String>,
    /// The distinguished variable `U`.
    pub distinguished: String,
    /// The multiplier `q` of the negative `h(V)` term.
    pub q: usize,
    /// The uniform expressions (all with the same `n` and `p`).
    pub expressions: Vec<UniformExpression>,
}

/// Errors reported by [`UniformMaxIip::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UniformityError {
    /// Two expressions have different `n` (head count).
    MismatchedHeadCount,
    /// Two expressions have different `p` (chain length).
    MismatchedChainLength,
    /// `X_0` is not empty.
    FirstConditionNotEmpty,
    /// The chain condition `X_j ⊆ Y_{j−1} ∩ Y_j` fails at position `j`.
    ChainConditionViolated(usize),
    /// The connectedness condition `U ∈ X_j` fails at position `j ≥ 1`.
    ConnectednessViolated(usize),
}

impl fmt::Display for UniformityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniformityError::MismatchedHeadCount => write!(f, "expressions disagree on n"),
            UniformityError::MismatchedChainLength => write!(f, "expressions disagree on p"),
            UniformityError::FirstConditionNotEmpty => write!(f, "X_0 must be empty"),
            UniformityError::ChainConditionViolated(j) => {
                write!(f, "chain condition violated at position {j}")
            }
            UniformityError::ConnectednessViolated(j) => {
                write!(f, "connectedness condition violated at position {j}")
            }
        }
    }
}

impl std::error::Error for UniformityError {}

impl UniformMaxIip {
    /// The full variable universe `U ∪ V` (distinguished variable first).
    pub fn universe(&self) -> Vec<String> {
        let mut all = vec![self.distinguished.clone()];
        all.extend(self.variables.iter().cloned());
        all
    }

    /// Checks the uniformity conditions of Section 5.1.
    pub fn validate(&self) -> Result<(), UniformityError> {
        let mut head_count = None;
        let mut chain_length = None;
        for e in &self.expressions {
            match head_count {
                None => head_count = Some(e.head_count),
                Some(n) if n != e.head_count => return Err(UniformityError::MismatchedHeadCount),
                _ => {}
            }
            match chain_length {
                None => chain_length = Some(e.chain.len()),
                Some(p) if p != e.chain.len() => {
                    return Err(UniformityError::MismatchedChainLength)
                }
                _ => {}
            }
            if let Some((_, x0)) = e.chain.first() {
                if !x0.is_empty() {
                    return Err(UniformityError::FirstConditionNotEmpty);
                }
            }
            for j in 1..e.chain.len() {
                let (y_prev, _) = &e.chain[j - 1];
                let (y_j, x_j) = &e.chain[j];
                if !x_j.is_subset(y_prev) || !x_j.is_subset(y_j) {
                    return Err(UniformityError::ChainConditionViolated(j));
                }
                if !x_j.contains(&self.distinguished) {
                    return Err(UniformityError::ConnectednessViolated(j));
                }
            }
        }
        Ok(())
    }

    /// Converts into a plain [`MaxInequality`] over the full universe, for
    /// validity checking.
    pub fn to_max_inequality(&self) -> MaxInequality {
        let universe = self.universe();
        let disjuncts = self
            .expressions
            .iter()
            .map(|e| e.to_expr(&self.distinguished, &universe, self.q))
            .collect();
        MaxInequality::new(universe, disjuncts)
    }
}

/// Lemma 5.3: transforms an arbitrary Max-IIP into an equivalent
/// Uniform-Max-IIP.  Rational coefficients are first scaled (per the whole
/// inequality) to integers, which does not affect validity.
///
/// The distinguished variable receives the name `distinguished`, which must
/// not clash with an existing variable.
///
/// # Panics
///
/// Panics if `distinguished` already occurs in the inequality's universe.
pub fn uniformize(inequality: &MaxInequality, distinguished: &str) -> UniformMaxIip {
    assert!(
        !inequality.variables.iter().any(|v| v == distinguished),
        "distinguished variable name {distinguished} already in use"
    );
    let variables = inequality.variables.clone();
    let full_v: VarSet = variables.iter().cloned().collect();
    let u_set: VarSet = [distinguished.to_string()].into_iter().collect();

    // Scale every disjunct to integer coefficients (common denominator of the
    // whole inequality, so the transformation is uniform).
    let mut lcm = BigInt::one();
    for d in &inequality.disjuncts {
        for (_, coeff) in d.terms() {
            lcm = lcm.lcm(coeff.denom());
        }
    }
    let scale = Rational::from(lcm);

    // Step 1 (Eq. 23/24): per disjunct, expand into unit terms.
    struct Intermediate {
        positive_sets: Vec<VarSet>, // the Y_i of the unconditioned sum
        negative_sets: Vec<VarSet>, // the X_j of the conditional sum (h(V|X_j))
    }
    let mut intermediates = Vec::new();
    for d in &inequality.disjuncts {
        let scaled = d.scale(&scale);
        let mut positive_sets = Vec::new();
        let mut negative_sets = Vec::new();
        for (set, coeff) in scaled.terms() {
            let count = coeff
                .abs()
                .numer()
                .to_u64()
                .expect("scaled coefficients are integers of reasonable size");
            for _ in 0..count {
                if coeff.is_positive() {
                    positive_sets.push(set.clone());
                } else {
                    negative_sets.push(set.clone());
                }
            }
        }
        intermediates.push(Intermediate {
            positive_sets,
            negative_sets,
        });
    }

    // n = max_ℓ n_ℓ (number of negative unit terms).
    let n = intermediates
        .iter()
        .map(|i| i.negative_sets.len())
        .max()
        .unwrap_or(0);

    // Step 2: build, per disjunct, the chain over the extended universe UV.
    //   E'_ℓ = n·h(U) + h(U|∅)
    //        + Σ_j h(UV | U X_j)          for X_0 = ∅ and each negative set
    //        + Σ_i h(U Y_i | U)           for each positive set
    //        + (n − n_ℓ) · h(UV | U)      padding so every disjunct has the same p
    //        − (n + 1) · h(UV)
    // The chain condition holds because every Y on the left contains U and all
    // conditions after position 0 contain U; connectedness is immediate.
    let mut universe_set: VarSet = full_v.clone();
    universe_set.insert(distinguished.to_string());

    let mut expressions = Vec::new();
    let mut max_p = 0usize;
    let mut chains: Vec<Vec<(VarSet, VarSet)>> = Vec::new();
    for inter in &intermediates {
        let mut chain: Vec<(VarSet, VarSet)> = Vec::new();
        // Position 0: h(U | ∅).
        chain.push((u_set.clone(), BTreeSet::new()));
        // The conditional block: h(UV | U X_j), starting with X_0 = ∅ (i.e. h(UV|U)).
        chain.push((universe_set.clone(), u_set.clone()));
        for x in &inter.negative_sets {
            let mut condition = x.clone();
            condition.insert(distinguished.to_string());
            chain.push((universe_set.clone(), condition));
        }
        // Padding so every disjunct subtracts the same number of h(UV) terms.
        for _ in inter.negative_sets.len()..n {
            chain.push((universe_set.clone(), u_set.clone()));
        }
        // The unconditioned block, lifted by U: h(U Y_i | U).
        for y in &inter.positive_sets {
            let mut lifted = y.clone();
            lifted.insert(distinguished.to_string());
            chain.push((lifted, u_set.clone()));
        }
        max_p = max_p.max(chain.len());
        chains.push(chain);
    }
    // Final padding with h(U|U) (a zero term) so all chains have equal length.
    for chain in &mut chains {
        while chain.len() < max_p {
            chain.push((u_set.clone(), u_set.clone()));
        }
        expressions.push(UniformExpression {
            head_count: n,
            chain: chain.clone(),
        });
    }

    UniformMaxIip {
        variables,
        distinguished: distinguished.to_string(),
        q: n + 1,
        expressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inequality::LinearInequality;
    use crate::prover::check_max_inequality;
    use bqc_arith::{int, ratio};

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn expr(terms: &[(i64, &[&str])]) -> EntropyExpr {
        let mut e = EntropyExpr::zero();
        for (coeff, set) in terms {
            e.add_term(int(*coeff), set.iter().copied());
        }
        e
    }

    /// The uniformization must preserve validity over the polymatroid cone
    /// (the proof of Lemma 5.3 goes through verbatim for polymatroids).
    fn assert_equivalent(original: &MaxInequality) {
        let uniform = uniformize(original, "U");
        uniform
            .validate()
            .expect("uniformization must produce a uniform inequality");
        let transformed = uniform.to_max_inequality();
        let a = check_max_inequality(original).is_valid();
        let b = check_max_inequality(&transformed).is_valid();
        assert_eq!(a, b, "uniformization changed validity for {original}");
    }

    #[test]
    fn example_19_uniformizes_and_stays_valid() {
        // Eq. (19): 0 <= h(X1) + 2h(X2) + h(X3) - h(X1X2) - h(X2X3).
        let ineq = LinearInequality::new(
            vars(&["X1", "X2", "X3"]),
            expr(&[
                (1, &["X1"]),
                (2, &["X2"]),
                (1, &["X3"]),
                (-1, &["X1", "X2"]),
                (-1, &["X2", "X3"]),
            ]),
        );
        assert_equivalent(&ineq.to_max());
        let uniform = uniformize(&ineq.to_max(), "U");
        // n = 2 negative unit terms, q = 3 (matching Eq. (20)'s 3·h(X1X2X3)).
        assert_eq!(uniform.q, 3);
        assert_eq!(uniform.expressions.len(), 1);
        assert_eq!(uniform.expressions[0].head_count, 2);
    }

    #[test]
    fn invalid_inequalities_stay_invalid() {
        let ineq = LinearInequality::new(vars(&["X", "Y"]), expr(&[(1, &["X"]), (-1, &["Y"])]));
        assert_equivalent(&ineq.to_max());
        // Supermodularity.
        let ineq = LinearInequality::new(
            vars(&["X", "Y"]),
            expr(&[(1, &["X", "Y"]), (-1, &["X"]), (-1, &["Y"])]),
        );
        assert_equivalent(&ineq.to_max());
    }

    #[test]
    fn max_inequalities_uniformize() {
        // Valid: max(h(X)-h(Y), h(Y)-h(X)).
        let d1 = expr(&[(1, &["X"]), (-1, &["Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X"])]);
        let max = MaxInequality::new(vars(&["X", "Y"]), vec![d1, d2]);
        assert_equivalent(&max);
        let uniform = uniformize(&max, "U");
        assert_eq!(uniform.expressions.len(), 2);
        // Both disjuncts share n and p after padding.
        assert_eq!(
            uniform.expressions[0].head_count,
            uniform.expressions[1].head_count
        );
        assert_eq!(
            uniform.expressions[0].chain.len(),
            uniform.expressions[1].chain.len()
        );

        // Invalid: max(h(X)-h(XY), h(Y)-h(XY)).
        let d1 = expr(&[(1, &["X"]), (-1, &["X", "Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X", "Y"])]);
        let max = MaxInequality::new(vars(&["X", "Y"]), vec![d1, d2]);
        assert_equivalent(&max);
    }

    #[test]
    fn rational_coefficients_are_scaled() {
        let mut e = EntropyExpr::zero();
        e.add_term(ratio(1, 2), ["X"]);
        e.add_term(ratio(-1, 3), ["Y"]);
        let max = MaxInequality::new(vars(&["X", "Y"]), vec![e]);
        let uniform = uniformize(&max, "U");
        uniform.validate().unwrap();
        // 1/2 h(X) - 1/3 h(Y) scaled by 6 = 3 h(X) - 2 h(Y): 2 negative units.
        assert_eq!(uniform.expressions[0].head_count, 2);
        assert_equivalent(&max);
    }

    #[test]
    fn validation_catches_broken_chains() {
        let bad = UniformMaxIip {
            variables: vars(&["X"]),
            distinguished: "U".to_string(),
            q: 1,
            expressions: vec![UniformExpression {
                head_count: 0,
                chain: vec![
                    (
                        bqc_entropy::varset(["U", "X"]),
                        bqc_entropy::varset([] as [&str; 0]),
                    ),
                    // X_1 = {X} satisfies the chain condition but does not
                    // contain U: connectedness violated.
                    (bqc_entropy::varset(["U", "X"]), bqc_entropy::varset(["X"])),
                ],
            }],
        };
        assert!(matches!(
            bad.validate(),
            Err(UniformityError::ConnectednessViolated(1))
        ));

        let bad_first = UniformMaxIip {
            variables: vars(&["X"]),
            distinguished: "U".to_string(),
            q: 1,
            expressions: vec![UniformExpression {
                head_count: 0,
                chain: vec![(bqc_entropy::varset(["U"]), bqc_entropy::varset(["X"]))],
            }],
        };
        assert!(matches!(
            bad_first.validate(),
            Err(UniformityError::FirstConditionNotEmpty)
        ));
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn clashing_distinguished_variable_panics() {
        let max = MaxInequality::new(vars(&["U", "X"]), vec![expr(&[(1, &["X"])])]);
        uniformize(&max, "U");
    }

    #[test]
    fn chain_condition_is_violated_when_detected() {
        let bad = UniformMaxIip {
            variables: vars(&["X", "Y"]),
            distinguished: "U".to_string(),
            q: 1,
            expressions: vec![UniformExpression {
                head_count: 0,
                chain: vec![
                    (
                        bqc_entropy::varset(["U", "X"]),
                        bqc_entropy::varset([] as [&str; 0]),
                    ),
                    // X_1 = {U, Y} is not a subset of Y_0 = {U, X}.
                    (
                        bqc_entropy::varset(["U", "Y"]),
                        bqc_entropy::varset(["U", "Y"]),
                    ),
                ],
            }],
        };
        assert!(matches!(
            bad.validate(),
            Err(UniformityError::ChainConditionViolated(1))
        ));
    }
}
