//! The lazy separation loop against the eager Γ_n cone.
//!
//! Two independently built deciders must agree on Shannon-provability for
//! every inequality: the production prover solves a growing relaxation with
//! separation ([`bqc_iip::check_max_inequality`]), the retained seed
//! implementation materializes all `n + C(n,2)·2^{n−2}` elemental rows up
//! front ([`bqc_iip::check_max_inequality_eager`]).  Verdicts must match
//! exactly; counterexamples may be different vertices of the violating
//! region, so each is checked *semantically* instead — it must be a genuine
//! polymatroid ([`bqc_entropy::is_polymatroid`]) on which every disjunct
//! evaluates ≤ −1.

use bqc_arith::{int, Rational};
use bqc_entropy::{is_polymatroid, EntropyExpr, SetFunction};
use bqc_iip::{
    check_linear_inequality, check_linear_inequality_eager, check_max_inequality,
    check_max_inequality_eager, GammaProver, GammaValidity, LinearInequality, MaxInequality,
};
use proptest::prelude::*;

fn universe(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("X{i}")).collect()
}

/// Builds an [`EntropyExpr`] from `(mask, coeff)` pairs over `X0..X{n−1}`.
fn expr_from_masks(n: usize, terms: &[(u32, i64)]) -> EntropyExpr {
    let mut e = EntropyExpr::zero();
    for (mask, coeff) in terms {
        if *coeff == 0 {
            continue;
        }
        let mask = 1 + (mask % ((1u32 << n) - 1));
        let set: Vec<String> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| format!("X{i}"))
            .collect();
        e.add_term(int(*coeff), set);
    }
    e
}

/// Asserts a counterexample is semantically valid for a max-inequality.
fn assert_counterexample(max: &MaxInequality, h: &SetFunction) {
    assert!(is_polymatroid(h), "counterexample must be a polymatroid");
    for disjunct in &max.disjuncts {
        assert!(
            disjunct.evaluate(h) <= -Rational::one(),
            "every disjunct must evaluate <= -1"
        );
    }
    assert!(max.evaluate(h).is_negative());
}

/// The two checkers on one max-inequality, cross-validated.
fn assert_equivalent(max: &MaxInequality) {
    let lazy = check_max_inequality(max);
    let eager = check_max_inequality_eager(max);
    assert_eq!(
        lazy.is_valid(),
        eager.is_valid(),
        "lazy and eager verdicts must agree on {max:?}"
    );
    if let GammaValidity::NotShannonProvable { counterexample } = &lazy {
        assert_counterexample(max, counterexample);
    }
    if let GammaValidity::NotShannonProvable { counterexample } = &eager {
        assert_counterexample(max, counterexample);
    }
}

proptest! {
    /// Random linear inequalities over 2..=5 variables.
    #[test]
    fn lazy_matches_eager_on_random_linear_inequalities(
        n in 2usize..6,
        terms in proptest::collection::vec((0u32..31, -3i64..4), 1..6),
    ) {
        let expr = expr_from_masks(n, &terms);
        let ineq = LinearInequality::new(universe(n), expr);
        assert_equivalent(&ineq.to_max());
    }

    /// Random max-inequalities with several disjuncts: validity of the max
    /// is weaker than validity of any disjunct, so these exercise the
    /// all-disjuncts-simultaneously-violated geometry.
    #[test]
    fn lazy_matches_eager_on_random_max_inequalities(
        n in 2usize..5,
        disjuncts in proptest::collection::vec(
            proptest::collection::vec((0u32..15, -2i64..3), 1..4),
            1..4,
        ),
    ) {
        let exprs: Vec<EntropyExpr> = disjuncts
            .iter()
            .map(|terms| expr_from_masks(n, terms))
            .collect();
        let max = MaxInequality::new(universe(n), exprs);
        assert_equivalent(&max);
    }

    /// A warm (stateful) prover fed a random probe sequence must return the
    /// same verdicts as the eager cone on every probe, whatever separation
    /// state its cache carries over.
    #[test]
    fn warm_prover_matches_eager_across_random_sequences(
        n in 2usize..5,
        sequence in proptest::collection::vec(
            proptest::collection::vec((0u32..15, -2i64..3), 1..5),
            2..6,
        ),
    ) {
        let mut prover = GammaProver::new();
        for terms in &sequence {
            let ineq = LinearInequality::new(universe(n), expr_from_masks(n, terms));
            let warm = prover.check_linear_inequality(&ineq);
            let eager = check_linear_inequality_eager(&ineq);
            prop_assert_eq!(warm.is_valid(), eager.is_valid());
            if let GammaValidity::NotShannonProvable { counterexample } = &warm {
                assert_counterexample(&ineq.to_max(), counterexample);
            }
        }
    }
}

/// Regression: the Zhang–Yeung non-Shannon inequality must still yield a
/// polymatroid counterexample under lazy separation (it is the classic case
/// where `Γ*_4 ⊊ Γ_4`, so certifying validity here would be a soundness bug
/// in the separation loop's termination condition).
#[test]
fn zhang_yeung_still_yields_a_counterexample_under_separation() {
    let universe = universe(4);
    let names = ["X0", "X1", "X2", "X3"];
    let mut e = EntropyExpr::zero();
    let mi = |e: &mut EntropyExpr, coeff: i64, a: &[usize], b: &[usize], cond: &[usize]| {
        let join = |xs: &[usize], ys: &[usize]| -> Vec<String> {
            let mut v: Vec<String> = xs.iter().map(|&i| names[i].to_string()).collect();
            for &y in ys {
                if !v.contains(&names[y].to_string()) {
                    v.push(names[y].to_string());
                }
            }
            v
        };
        e.add_term(int(coeff), join(a, cond));
        e.add_term(int(coeff), join(b, cond));
        let ab: Vec<usize> = a.iter().chain(b).copied().collect();
        e.add_term(int(-coeff), join(&ab, cond));
        e.add_term(int(-coeff), join(cond, &[]));
    };
    // 2 I(C;D) <= I(A;B) + I(A;CD) + 3 I(C;D|A) + I(C;D|B), with
    // (A, B, C, D) = (X0, X1, X2, X3).
    mi(&mut e, 1, &[0], &[1], &[]);
    mi(&mut e, 1, &[0], &[2, 3], &[]);
    mi(&mut e, 3, &[2], &[3], &[0]);
    mi(&mut e, 1, &[2], &[3], &[1]);
    mi(&mut e, -2, &[2], &[3], &[]);
    let ineq = LinearInequality::new(universe, e);

    let lazy = check_linear_inequality(&ineq);
    let eager = check_linear_inequality_eager(&ineq);
    assert!(!lazy.is_valid(), "Zhang–Yeung is not Shannon-provable");
    assert!(!eager.is_valid());
    let h = lazy.counterexample().expect("violating polymatroid");
    assert!(is_polymatroid(h));
    assert!(ineq.evaluate(h) <= -int(1));
}

/// The textbook valid/invalid pairs, checked through both paths and through
/// a shared warm prover, including repeated probes of the same shape (the
/// warm cache's fast path).
#[test]
fn curated_suite_agrees_with_warm_and_cold_provers() {
    let cases: Vec<(usize, Vec<(u32, i64)>)> = vec![
        // Submodularity (valid): h(X0) + h(X1) - h(X0X1) >= 0, masks 1, 2, 3.
        (3, vec![(0, 1), (1, 1), (2, -1)]),
        // Supermodularity (invalid).
        (3, vec![(0, -1), (1, -1), (2, 1)]),
        // Monotonicity at the top (valid): h(V) - h(X0X1) >= 0.
        (3, vec![(6, 1), (2, -1)]),
        // h(X0) - h(V) >= 0 (invalid).
        (3, vec![(0, 1), (6, -1)]),
    ];
    let mut prover = GammaProver::new();
    for (n, terms) in &cases {
        let ineq = LinearInequality::new(universe(*n), expr_from_masks(*n, terms));
        let eager = check_linear_inequality_eager(&ineq);
        for _ in 0..3 {
            let warm = prover.check_linear_inequality(&ineq);
            assert_eq!(warm.is_valid(), eager.is_valid());
        }
    }
    assert!(prover.cached_bases() >= 1);
}
