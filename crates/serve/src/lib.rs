#![warn(missing_docs)]
//! # bqc-serve — the persistent containment-serving daemon
//!
//! `bqc-engine` amortizes work *within* a batch; this crate amortizes it
//! *across process lifetimes and clients*.  It wraps one shared
//! [`bqc_engine::Engine`] in a TCP daemon (`bqc serve`) that:
//!
//! * speaks a **newline-delimited text protocol** ([`proto`]) whose decide
//!   requests are exactly the workload pair syntax — any `.bqc` workload
//!   file can be streamed straight into the socket — plus `!`-prefixed
//!   admin commands (`!ping`, `!stats`, `!snapshot`, `!shutdown`, `!quit`);
//! * **micro-batches** concurrently arriving requests into
//!   [`bqc_engine::Engine::decide_batch`] ([`server`]), so canonical
//!   deduplication and the sharded decision cache work across clients the
//!   same way they work across the lines of a workload file;
//! * applies **admission control** at two layers — a connection cap and a
//!   bounded pending-request queue — answering `busy …` immediately
//!   instead of stalling admitted traffic;
//! * shuts down **gracefully** on `!shutdown`, SIGTERM, or stdin close:
//!   stop accepting, drain every admitted request, then write the decision
//!   cache to a durable snapshot ([`bqc_engine::persist`]) so the next
//!   process restarts *warm* — steady-state traffic answered from
//!   byte-identical cached verdicts before the first LP is ever solved.
//!
//! The daemon is built on `std::net` blocking sockets and plain threads —
//! one connection handler thread per client, one batcher — with no async
//! runtime; admission control, not an executor, is the concurrency story.
//! Operator documentation (wire grammar, capacity tuning, snapshot
//! lifecycle, metrics walkthrough) lives in `docs/OPERATIONS.md`.
//!
//! ## Quickstart
//!
//! ```
//! use bqc_engine::Engine;
//! use bqc_serve::{Server, ServeOptions};
//! use std::io::{BufRead, BufReader, Write};
//! use std::sync::Arc;
//!
//! let server = Server::bind(
//!     Arc::new(Engine::default()),
//!     ServeOptions {
//!         addr: "127.0.0.1:0".to_string(), // OS-assigned port
//!         ..ServeOptions::default()
//!     },
//! )
//! .unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.shutdown_handle();
//! let daemon = std::thread::spawn(move || server.run().unwrap());
//!
//! let stream = std::net::TcpStream::connect(addr).unwrap();
//! let mut writer = stream.try_clone().unwrap();
//! let mut lines = BufReader::new(stream).lines();
//! assert_eq!(lines.next().unwrap().unwrap(), "ok bqc-serve proto=1");
//! writeln!(writer, "Q1() :- R(x,y), R(y,z), R(z,x) ; Q2() :- R(u,v), R(u,w)").unwrap();
//! let reply = lines.next().unwrap().unwrap();
//! assert!(reply.starts_with("ok verdict=contained provenance=fresh"), "{reply}");
//!
//! handle.shutdown();
//! daemon.join().unwrap();
//! ```

pub mod proto;
pub mod server;

pub use proto::{
    banner, parse_request, provenance_token, render_result, verdict_token, Admin, Request,
    PROTO_VERSION,
};
pub use server::{ServeOptions, ServeSummary, Server, ShutdownHandle};
