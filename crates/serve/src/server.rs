//! The serving loop: listener, connection handlers, micro-batcher, and
//! graceful shutdown.
//!
//! ## Thread layout
//!
//! ```text
//! listener thread (run)          conn threads (one per client)      batcher thread
//! ──────────────────────         ─────────────────────────────      ─────────────────────
//! nonblocking accept poll   ──▶  read line, parse                   wait on condvar
//!   admission: conn cap            admin: answer inline        ┌──  drain ≤ batch_max jobs
//!   snapshot timer                 decide: bounded queue  ─────┘    Engine::decide_batch
//!   shutdown flag check              (busy when full)         ◀──  reply via per-job channel
//! ```
//!
//! Every decision request flows through one bounded queue into
//! [`bqc_engine::Engine::decide_batch`], so concurrent clients share the
//! engine's canonical dedup and cache exactly as a batch CLI run would —
//! two clients asking the same renamed pair in the same micro-batch cost
//! one fresh decision.
//!
//! ## Shutdown
//!
//! Shutdown is cooperative and has four triggers: the `!shutdown` admin
//! command, SIGTERM (when [`ServeOptions::handle_sigterm`] is set), a call
//! to [`ShutdownHandle::shutdown`] (the CLI wires stdin-close to this), and
//! dropping every [`ShutdownHandle`] clone never triggers it — the flag is
//! explicit.  On trigger: the listener stops accepting, the queue closes
//! (late decide requests get `error shutdown …`), the batcher drains what
//! was already admitted, connection threads notice within one read-timeout
//! tick, and — when a snapshot path is configured — the final cache
//! snapshot is written atomically before [`Server::run`] returns.

use crate::proto::{self, Admin, Request};
use bqc_engine::{Engine, SnapshotSaved};
use bqc_obs::{LazyCounter, LazyHistogram};
use bqc_relational::ConjunctiveQuery;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

static CONNECTIONS: LazyCounter = LazyCounter::new("bqc_serve_connections_total");
static CONN_REJECTED: LazyCounter = LazyCounter::new("bqc_serve_conn_rejected_total");
static REQUESTS: LazyCounter = LazyCounter::new("bqc_serve_requests_total");
static ADMIN_REQUESTS: LazyCounter = LazyCounter::new("bqc_serve_admin_requests_total");
static PARSE_ERRORS: LazyCounter = LazyCounter::new("bqc_serve_parse_errors_total");
static QUEUE_BUSY: LazyCounter = LazyCounter::new("bqc_serve_busy_total");
static BATCHES: LazyCounter = LazyCounter::new("bqc_serve_batches_total");
static BATCH_SIZE: LazyHistogram = LazyHistogram::new("bqc_serve_batch_size");
static REQUEST_MICROS: LazyHistogram = LazyHistogram::new("bqc_serve_request_micros");
static IDLE_TIMEOUTS: LazyCounter = LazyCounter::new("bqc_serve_idle_timeouts_total");
static BATCH_PANICS: LazyCounter = LazyCounter::new("bqc_serve_batch_panics_total");

/// How often blocked threads (reads, condvar waits, the accept poll) wake
/// to re-check the shutdown flag.  Bounds shutdown latency.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Tuning knobs for [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7411`.  Port `0` asks the OS for a
    /// free port; read it back from [`Server::local_addr`].
    pub addr: String,
    /// Maximum simultaneously served connections.  Further connections are
    /// turned away with a single `busy connections …` line.
    pub max_conns: usize,
    /// Bound on decision requests admitted but not yet decided.  A full
    /// queue answers `busy queue …` instead of admitting.
    pub queue_depth: usize,
    /// Largest micro-batch handed to [`Engine::decide_batch`] at once.
    pub batch_max: usize,
    /// Snapshot file path.  `None` disables persistence: no snapshot on
    /// shutdown, and the `!snapshot` admin command reports an error.
    pub snapshot: Option<PathBuf>,
    /// Also write a snapshot whenever this much time has passed since the
    /// last one.  Requires [`ServeOptions::snapshot`].
    pub snapshot_interval: Option<Duration>,
    /// Install a SIGTERM handler that triggers graceful shutdown (Unix
    /// only; ignored elsewhere).
    pub handle_sigterm: bool,
    /// Close a connection that has not completed a request line for this
    /// long, answering `error timeout …` first.  Without it, idle (or
    /// deliberately dribbling) clients pin connection slots forever and a
    /// slowloris swarm starves [`ServeOptions::max_conns`].  `None`
    /// disables the timeout.  Partial input does **not** reset the clock —
    /// only a completed request does — so byte-at-a-time dribbling cannot
    /// hold a slot past the deadline.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:7411".to_string(),
            max_conns: 64,
            queue_depth: 1024,
            batch_max: 64,
            snapshot: None,
            snapshot_interval: None,
            handle_sigterm: false,
            idle_timeout: Some(Duration::from_secs(300)),
        }
    }
}

/// What one run of the serving loop did, reported when it returns.
#[derive(Clone, Debug, Default)]
pub struct ServeSummary {
    /// Connections accepted (admitted past the connection cap).
    pub connections: u64,
    /// Request lines served across all connections, admin included.
    pub requests: u64,
    /// The final shutdown snapshot, when one was configured and written.
    pub snapshot: Option<SnapshotSaved>,
}

/// One queued decision request and the channel its connection waits on.
struct Job {
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    respond: SyncSender<String>,
}

/// Queue state guarded by one mutex: the pending jobs and whether the
/// queue still admits new ones.  `open` flips to `false` exactly once, at
/// shutdown, under the same lock the batcher drains with — so the batcher
/// exits only after every admitted job has been answered.
struct QueueState {
    queue: VecDeque<Job>,
    open: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    connections: AtomicU64,
    requests: AtomicU64,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        state.open = false;
        drop(state);
        self.work_ready.notify_all();
    }
}

/// A clonable handle that triggers graceful shutdown from another thread
/// (the CLI's stdin watcher, a test harness, a signal bridge).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begins graceful shutdown: stop accepting, drain admitted work,
    /// write the final snapshot.  Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

#[cfg(unix)]
mod sigterm {
    //! Minimal SIGTERM hook with no libc dependency: the POSIX `signal`
    //! entry point declared directly.  The handler only stores a relaxed
    //! atomic flag — the one operation that is async-signal-safe — which
    //! the accept loop polls every tick.
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static RECEIVED: AtomicBool = AtomicBool::new(false);

    const SIGTERM: i32 = 15;

    extern "C" fn on_sigterm(_signum: i32) {
        RECEIVED.store(true, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }

    pub fn received() -> bool {
        RECEIVED.load(Ordering::Relaxed)
    }
}

/// The `bqc serve` daemon: bind once, then [`run`](Server::run) until a
/// shutdown trigger fires.
pub struct Server {
    engine: Arc<Engine>,
    listener: TcpListener,
    options: ServeOptions,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket (failing fast on a bad or taken address) and
    /// prepares the serving state.  Nothing is served until [`Server::run`].
    pub fn bind(engine: Arc<Engine>, options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            engine,
            listener,
            options,
            shared: Arc::new(Shared {
                state: Mutex::new(QueueState {
                    queue: VecDeque::new(),
                    open: true,
                }),
                work_ready: Condvar::new(),
                shutdown: AtomicBool::new(false),
                active_conns: AtomicUsize::new(0),
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address — the way to learn the port after binding `:0`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a shutdown trigger fires, then drains and (when
    /// configured) writes the final snapshot.  Blocks the calling thread;
    /// spawn it if the caller needs to keep working.
    pub fn run(self) -> io::Result<ServeSummary> {
        if self.options.handle_sigterm {
            #[cfg(unix)]
            sigterm::install();
        }
        let batcher = {
            let engine = Arc::clone(&self.engine);
            let shared = Arc::clone(&self.shared);
            let batch_max = self.options.batch_max.max(1);
            std::thread::Builder::new()
                .name("bqc-serve-batcher".to_string())
                .spawn(move || batcher_loop(&engine, &shared, batch_max))?
        };

        let mut conn_threads = Vec::new();
        let mut last_snapshot = Instant::now();
        loop {
            #[cfg(unix)]
            if sigterm::received() {
                self.shared.begin_shutdown();
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let (Some(path), Some(interval)) =
                (&self.options.snapshot, self.options.snapshot_interval)
            {
                if last_snapshot.elapsed() >= interval {
                    // Periodic snapshots are best-effort: a failed write
                    // (disk full, permissions) must not kill the server.
                    let _ = self.engine.save_snapshot(path);
                    last_snapshot = Instant::now();
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    CONNECTIONS.inc();
                    let active = self.shared.active_conns.load(Ordering::SeqCst);
                    if active >= self.options.max_conns {
                        CONN_REJECTED.inc();
                        reject_connection(stream, self.options.max_conns);
                        continue;
                    }
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    self.shared.active_conns.fetch_add(1, Ordering::SeqCst);
                    let engine = Arc::clone(&self.engine);
                    let shared = Arc::clone(&self.shared);
                    let snapshot = self.options.snapshot.clone();
                    let queue_depth = self.options.queue_depth.max(1);
                    let idle_timeout = self.options.idle_timeout;
                    let handle = std::thread::Builder::new()
                        .name("bqc-serve-conn".to_string())
                        .spawn(move || {
                            let _ = serve_connection(
                                stream,
                                &engine,
                                &shared,
                                &snapshot,
                                queue_depth,
                                idle_timeout,
                            );
                            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                        })?;
                    conn_threads.push(handle);
                    // Joined handles accumulate over a long-lived daemon;
                    // reap the finished ones opportunistically.
                    conn_threads.retain(|h| !h.is_finished());
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_TICK);
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                Err(error) => return Err(error),
            }
        }

        // Drain: the queue is closed, so the batcher exits once every
        // admitted job is answered; connection threads notice the closed
        // queue / shutdown flag within one read-timeout tick.
        batcher.join().expect("batcher panicked");
        for handle in conn_threads {
            let _ = handle.join();
        }

        let snapshot = match &self.options.snapshot {
            Some(path) => Some(self.engine.save_snapshot(path)?),
            None => None,
        };
        Ok(ServeSummary {
            connections: self.shared.connections.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
            snapshot,
        })
    }
}

/// Turns a connection away at the cap: one `busy` line instead of the
/// banner, then close.  Clients must treat a first line starting `busy` as
/// rejection (documented in docs/OPERATIONS.md).
fn reject_connection(mut stream: TcpStream, max_conns: usize) {
    let _ = writeln!(stream, "busy connections max={max_conns}");
}

/// The micro-batcher: drains up to `batch_max` queued jobs at a time into
/// [`Engine::decide_batch`] and routes each answer back to its connection.
/// Exits only when the queue is both closed and empty, so every admitted
/// request is answered even during shutdown.
fn batcher_loop(engine: &Engine, shared: &Shared, batch_max: usize) {
    loop {
        let jobs: Vec<Job> = {
            let mut state = shared
                .state
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            loop {
                if !state.queue.is_empty() {
                    let take = state.queue.len().min(batch_max);
                    break state.queue.drain(..take).collect();
                }
                if !state.open {
                    return;
                }
                state = shared
                    .work_ready
                    .wait_timeout(state, POLL_TICK)
                    .unwrap_or_else(|poison| poison.into_inner())
                    .0;
            }
        };
        BATCHES.inc();
        BATCH_SIZE.observe(jobs.len() as u64);
        let requests: Vec<(ConjunctiveQuery, ConjunctiveQuery)> = jobs
            .iter()
            .map(|job| (job.q1.clone(), job.q2.clone()))
            .collect();
        // The engine already contains per-decision panics
        // (`DecideError::Panicked`); this catch covers the batch machinery
        // around it (and the `serve::batch` chaos injection point), so a
        // panicking batch answers its own jobs with an error instead of
        // killing the batcher thread and starving every later request.
        let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bqc_obs::failpoint("serve::batch");
            engine.decide_batch(&requests)
        }));
        match results {
            Ok(results) => {
                for (job, result) in jobs.into_iter().zip(results) {
                    // A send fails only if the connection died while waiting;
                    // the answer is already in the cache, so nothing is lost.
                    let _ = job.respond.send(proto::render_result(&result));
                }
            }
            Err(_) => {
                BATCH_PANICS.inc();
                for job in jobs {
                    let _ = job
                        .respond
                        .send("error decide batch panicked; request not decided".to_string());
                }
            }
        }
    }
}

/// Serves one connection: banner, then a request/response line loop until
/// EOF, `!quit`, `!shutdown`, or server shutdown.
fn serve_connection(
    stream: TcpStream,
    engine: &Engine,
    shared: &Shared,
    snapshot: &Option<PathBuf>,
    queue_depth: usize,
    idle_timeout: Option<Duration>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{}", proto::banner())?;

    let mut line_buf: Vec<u8> = Vec::new();
    // Restarted after every *completed* request line, never by partial
    // bytes: a slowloris client dribbling one byte per tick gets exactly
    // one idle window, not one per byte.
    let mut last_request = Instant::now();
    loop {
        // read_until appends whatever arrived before a timeout, so a
        // partial line survives across shutdown-flag polls.
        match reader.read_until(b'\n', &mut line_buf) {
            Ok(0) => {
                if line_buf.is_empty() {
                    return Ok(()); // clean EOF
                }
                // Final line without a trailing newline: serve it, then EOF.
            }
            Ok(_) => {
                if !line_buf.ends_with(b"\n") {
                    continue; // mid-line; keep reading
                }
            }
            Err(error)
                if matches!(
                    error.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                if let Some(limit) = idle_timeout {
                    if last_request.elapsed() >= limit {
                        IDLE_TIMEOUTS.inc();
                        writeln!(
                            writer,
                            "error timeout idle for {}ms, closing",
                            limit.as_millis()
                        )?;
                        return Ok(());
                    }
                }
                continue;
            }
            Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
            Err(error) => return Err(error),
        }
        let at_eof = !line_buf.ends_with(b"\n");
        let line = String::from_utf8_lossy(&line_buf).into_owned();
        line_buf.clear();
        last_request = Instant::now();
        REQUESTS.inc();
        shared.requests.fetch_add(1, Ordering::Relaxed);

        match proto::parse_request(&line) {
            Ok(Request::Blank) => writeln!(writer, "ok skip")?,
            Ok(Request::Admin(admin)) => {
                ADMIN_REQUESTS.inc();
                match admin {
                    Admin::Ping => {
                        writeln!(writer, "ok pong proto={}", proto::PROTO_VERSION)?;
                    }
                    Admin::Stats => writeln!(writer, "{}", stats_line(engine))?,
                    Admin::Snapshot => match snapshot {
                        Some(path) => match engine.save_snapshot(path) {
                            Ok(saved) => writeln!(
                                writer,
                                "ok snapshot entries={} bytes={}",
                                saved.entries, saved.bytes
                            )?,
                            Err(error) => writeln!(
                                writer,
                                "error snapshot {}",
                                proto::single_line(&error.to_string())
                            )?,
                        },
                        None => writeln!(
                            writer,
                            "error snapshot no snapshot path configured (start with --snapshot)"
                        )?,
                    },
                    Admin::Shutdown => {
                        writeln!(writer, "ok shutting-down")?;
                        shared.begin_shutdown();
                        return Ok(());
                    }
                    Admin::Quit => {
                        writeln!(writer, "ok bye")?;
                        return Ok(());
                    }
                }
            }
            Ok(Request::Decide { q1, q2 }) => {
                let response = enqueue_and_wait(shared, queue_depth, q1, q2);
                match response {
                    Some(response) => writeln!(writer, "{response}")?,
                    None => {
                        writeln!(writer, "error shutdown server is shutting down")?;
                        return Ok(());
                    }
                }
            }
            Err(message) => {
                PARSE_ERRORS.inc();
                writeln!(writer, "error parse {}", proto::single_line(&message))?;
            }
        }
        if at_eof {
            return Ok(());
        }
    }
}

/// Admits one decision request into the bounded queue and blocks until the
/// batcher answers.  Returns the response line, or `None` when the queue
/// has closed for shutdown.
fn enqueue_and_wait(
    shared: &Shared,
    queue_depth: usize,
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
) -> Option<String> {
    let (respond, receive) = std::sync::mpsc::sync_channel(1);
    {
        let mut state = shared
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if !state.open {
            return None;
        }
        if state.queue.len() >= queue_depth {
            QUEUE_BUSY.inc();
            return Some(format!("busy queue depth={queue_depth}"));
        }
        state.queue.push_back(Job { q1, q2, respond });
    }
    shared.work_ready.notify_one();
    let start = Instant::now();
    // The batcher drains every admitted job before exiting, so this recv
    // fails only on a batcher panic — surface that as a decide error
    // rather than poisoning the connection thread.
    let response = receive
        .recv()
        .unwrap_or_else(|_| "error decide batch executor unavailable".to_string());
    REQUEST_MICROS.observe(start.elapsed().as_micros() as u64);
    Some(response)
}

/// The one-line `!stats` reply: total traffic and where it was served
/// from, current cache residency, and the fault-isolation counters
/// (contained decision panics and cache-excluded budget-exhausted answers).
///
/// ```text
/// ok stats traffic=12 fresh=5 cached=4 restored=2 deduped=1 entries=7 panics=0 budget-exhausted=0
/// ```
fn stats_line(engine: &Engine) -> String {
    let short = engine.short_circuit_stats();
    let fresh: u64 = engine.pipeline_stats().iter().map(|s| s.decided).sum();
    let cache = engine.cache_stats();
    let faults = engine.fault_stats();
    format!(
        "ok stats traffic={} fresh={} cached={} restored={} deduped={} entries={} \
         panics={} budget-exhausted={}",
        fresh + short.total(),
        fresh,
        short.cached,
        short.restored,
        short.deduped,
        cache.entries,
        faults.panics,
        faults.budget_exhausted
    )
}
