//! The `bqc serve` wire protocol: newline-delimited text, request in,
//! response out, one line each.
//!
//! The protocol deliberately reuses the workload file syntax
//! ([`bqc_engine::workload`]) for decision requests, so any line that is
//! valid in a `.bqc` workload file is a valid request — a client can stream
//! a workload file straight into the socket.  Lines starting with `!` are
//! admin commands.  The full grammar, with examples, lives in
//! `docs/OPERATIONS.md`; this module is the single source of truth for
//! parsing requests and rendering responses, shared by the server and its
//! tests.
//!
//! ## Requests
//!
//! ```text
//! request      = decide-line | admin-line | blank-line
//! decide-line  = <Q1 query> ";" <Q2 query>      # workload pair syntax
//! admin-line   = "!ping" | "!stats" | "!snapshot" | "!shutdown" | "!quit"
//! blank-line   = ""                             # or comment-only (# / %)
//! ```
//!
//! ## Responses
//!
//! Every response is one line of space-separated tokens.  The first token
//! classifies it: `ok`, `error`, or `busy`.  Subsequent tokens are
//! `key=value` pairs (for `ok` responses) or a category word followed by a
//! free-text message (for `error` responses).

use bqc_core::{AnswerSummary, Obstruction};
use bqc_engine::{parse_workload_line, BatchResult, Provenance};
use bqc_relational::ConjunctiveQuery;

/// Version number sent in the connection banner and `!ping` reply.  Bump on
/// any incompatible change to the request grammar or response tokens.
pub const PROTO_VERSION: u32 = 1;

/// The greeting the server writes as the first line of every accepted
/// connection (rejected connections get a `busy` line instead).
pub fn banner() -> String {
    format!("ok bqc-serve proto={PROTO_VERSION}")
}

/// An admin command: a request line starting with `!`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admin {
    /// `!ping` — liveness probe; answered inline, never queued.
    Ping,
    /// `!stats` — one-line serving statistics summary.
    Stats,
    /// `!snapshot` — write a decision-cache snapshot now.
    Snapshot,
    /// `!shutdown` — begin graceful shutdown of the whole server.
    Shutdown,
    /// `!quit` — close this connection only.
    Quit,
}

/// One parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Blank or comment-only line: acknowledged with `ok skip`, not queued.
    Blank,
    /// A containment question in workload pair syntax.
    Decide {
        /// The contained-candidate query (left of `;`).
        q1: ConjunctiveQuery,
        /// The containing-candidate query (right of `;`).
        q2: ConjunctiveQuery,
    },
    /// An admin command.
    Admin(Admin),
}

/// Parses one request line.  Returns `Err(message)` for lines that parse as
/// neither a workload pair nor a known admin command; the message is the
/// free-text tail of the `error parse …` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let trimmed = line.trim();
    if let Some(command) = trimmed.strip_prefix('!') {
        return match command.trim_end() {
            "ping" => Ok(Request::Admin(Admin::Ping)),
            "stats" => Ok(Request::Admin(Admin::Stats)),
            "snapshot" => Ok(Request::Admin(Admin::Snapshot)),
            "shutdown" => Ok(Request::Admin(Admin::Shutdown)),
            "quit" => Ok(Request::Admin(Admin::Quit)),
            other => Err(format!(
                "unknown admin command `!{other}` (expected !ping, !stats, !snapshot, \
                 !shutdown, or !quit)"
            )),
        };
    }
    match parse_workload_line(line, 1) {
        Ok(None) => Ok(Request::Blank),
        Ok(Some(entry)) => Ok(Request::Decide {
            q1: entry.q1,
            q2: entry.q2,
        }),
        // The workload error prefixes its message with "line 1" — accurate
        // for a file, noise for a single-line protocol.  Re-anchor it.
        Err(error) => Err(error
            .to_string()
            .trim_start_matches("line 1, ")
            .trim_start_matches("line 1: ")
            .to_string()),
    }
}

/// The `verdict=` token for a summary.
pub fn verdict_token(summary: &AnswerSummary) -> &'static str {
    match summary {
        AnswerSummary::Contained => "contained",
        AnswerSummary::NotContained { .. } => "not-contained",
        AnswerSummary::Unknown { .. } => "unknown",
    }
}

/// The `provenance=` token for a batch result.  Snapshot-restored answers
/// report `cached` — restoration is an accounting distinction (`!stats`
/// exposes it), not a protocol one: the bytes of the answer are identical.
pub fn provenance_token(provenance: Provenance) -> &'static str {
    match provenance {
        Provenance::Fresh => "fresh",
        Provenance::CachedHit => "cached",
        Provenance::DedupedInFlight => "deduped",
    }
}

/// Renders the response line for one decided request:
///
/// ```text
/// ok verdict=contained provenance=fresh micros=412 pair=91f0c4e2a7b3d516
/// ok verdict=not-contained witness=verified provenance=cached micros=0 pair=…
/// ok verdict=unknown obstruction=not-chordal provenance=fresh micros=87 pair=…
/// ok verdict=unknown obstruction=resource-exhausted resource=deadline provenance=fresh micros=… pair=…
/// error decide <message>
/// ```
///
/// A `resource-exhausted` answer is degraded, not wrong: the decision ran
/// out of its configured budget (`--request-deadline-ms`, `--max-pivots`)
/// and soundly reports `unknown`.  It is never cached, so retrying — or
/// re-asking without a budget — re-runs the procedure.
pub fn render_result(result: &BatchResult) -> String {
    match &result.answer {
        Ok(summary) => {
            let mut line = format!("ok verdict={}", verdict_token(summary));
            match summary {
                AnswerSummary::Contained => {}
                AnswerSummary::NotContained { witness_verified } => {
                    line.push_str(if *witness_verified {
                        " witness=verified"
                    } else {
                        " witness=unverified"
                    });
                }
                AnswerSummary::Unknown { obstruction } => match obstruction {
                    Obstruction::NotChordal => line.push_str(" obstruction=not-chordal"),
                    Obstruction::JunctionTreeNotSimple => {
                        line.push_str(" obstruction=junction-tree-not-simple")
                    }
                    Obstruction::ResourceExhausted { resource } => line.push_str(&format!(
                        " obstruction=resource-exhausted resource={}",
                        resource.token()
                    )),
                },
            }
            line.push_str(&format!(
                " provenance={} micros={} pair={:016x}",
                provenance_token(result.provenance),
                result.micros,
                result.pair_hash
            ));
            line
        }
        Err(error) => format!("error decide {}", single_line(&error.to_string())),
    }
}

/// Collapses a possibly multi-line message into one protocol line.
pub fn single_line(message: &str) -> String {
    message
        .split(['\n', '\r'])
        .filter(|piece| !piece.trim().is_empty())
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admin_commands_parse() {
        for (text, expected) in [
            ("!ping", Admin::Ping),
            ("  !stats  ", Admin::Stats),
            ("!snapshot", Admin::Snapshot),
            ("!shutdown", Admin::Shutdown),
            ("!quit", Admin::Quit),
        ] {
            match parse_request(text) {
                Ok(Request::Admin(admin)) => assert_eq!(admin, expected),
                other => panic!("{text:?} parsed as {other:?}"),
            }
        }
        let err = parse_request("!reboot").unwrap_err();
        assert!(err.contains("!reboot"), "names the bad command: {err}");
    }

    #[test]
    fn workload_lines_parse_as_decide_requests() {
        match parse_request("Q1() :- R(x,y) ; Q2() :- R(u,v), R(u,w)  # trailing comment") {
            Ok(Request::Decide { .. }) => {}
            other => panic!("parsed as {other:?}"),
        }
        assert!(matches!(parse_request(""), Ok(Request::Blank)));
        assert!(matches!(
            parse_request("  # just a comment"),
            Ok(Request::Blank)
        ));
        let err = parse_request("Q1() :- R(x,y)").unwrap_err();
        assert!(!err.starts_with("line 1"), "re-anchored message: {err}");
    }

    #[test]
    fn messages_are_collapsed_to_one_line() {
        assert_eq!(single_line("a\nb\r\n\nc"), "a; b; c");
    }

    #[test]
    fn resource_exhausted_answers_render_the_degraded_wire_form() {
        let result = BatchResult {
            answer: Ok(AnswerSummary::Unknown {
                obstruction: Obstruction::ResourceExhausted {
                    resource: bqc_core::BudgetResource::Deadline,
                },
            }),
            provenance: Provenance::Fresh,
            micros: 7,
            pair_hash: 0xabc,
            trace: None,
        };
        assert_eq!(
            render_result(&result),
            "ok verdict=unknown obstruction=resource-exhausted resource=deadline \
             provenance=fresh micros=7 pair=0000000000000abc"
        );
    }
}
