//! End-to-end tests of the serving daemon over real sockets.
//!
//! Each test binds port 0, drives the daemon through plain `TcpStream`
//! clients speaking the documented wire protocol, and shuts down through
//! one of the graceful triggers.  The restart tests assert the acceptance
//! property of the snapshot subsystem: a daemon restored from its
//! predecessor's snapshot answers previously-seen pairs with
//! `provenance=cached` and the *identical* response verdict tokens, and a
//! corrupt snapshot degrades to a cold start without crashing.

use bqc_engine::{Engine, EngineOptions};
use bqc_serve::{ServeOptions, Server, ShutdownHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A unique temp path per call, cleaned up by the OS tempdir policy.
fn temp_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "bqc-serve-e2e-{}-{tag}-{n}.bqcsnap",
        std::process::id()
    ))
}

/// A running daemon plus the handles the tests drive it with.
struct Daemon {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: JoinHandle<bqc_serve::ServeSummary>,
}

fn start_daemon(options: ServeOptions) -> Daemon {
    let engine = Arc::new(Engine::new(EngineOptions {
        // Small but not tiny: the tests' working sets fit without evictions.
        cache_shards: 2,
        shard_capacity: 64,
        ..EngineOptions::default()
    }));
    start_daemon_with(engine, options)
}

fn start_daemon_with(engine: Arc<Engine>, mut options: ServeOptions) -> Daemon {
    options.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(engine, options).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().expect("serve loop"));
    Daemon {
        addr,
        handle,
        thread,
    }
}

impl Daemon {
    fn stop(self) -> bqc_serve::ServeSummary {
        self.handle.shutdown();
        self.thread.join().expect("daemon thread")
    }
}

/// One protocol client: connects, checks the banner, then exchanges lines.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone stream");
        let mut client = Client {
            writer,
            reader: BufReader::new(stream),
        };
        let banner = client.read_line();
        assert_eq!(banner, "ok bqc-serve proto=1", "banner");
        client
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line.trim_end().to_string()
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("write request");
        self.read_line()
    }
}

const TRIANGLE_VS_STAR: &str = "Q1() :- R(x,y), R(y,z), R(z,x) ; Q2() :- R(u,v), R(u,w)";
/// The same question as [`TRIANGLE_VS_STAR`] modulo renaming and reordering.
const TRIANGLE_VS_STAR_RENAMED: &str = "A() :- R(c,a), R(a,b), R(b,c) ; B() :- R(h,k), R(h,j)";
const STAR_VS_TRIANGLE: &str = "Q1() :- R(u,v), R(u,w) ; Q2() :- R(x,y), R(y,z), R(z,x)";

#[test]
fn protocol_round_trip_with_admin_commands() {
    let daemon = start_daemon(ServeOptions::default());
    let mut client = Client::connect(daemon.addr);

    let fresh = client.request(TRIANGLE_VS_STAR);
    assert!(
        fresh.starts_with("ok verdict=contained provenance=fresh"),
        "{fresh}"
    );
    let pair_token = fresh.rsplit(' ').next().unwrap().to_string();
    assert!(pair_token.starts_with("pair="), "{fresh}");

    // Renamed + reordered spelling: same canonical pair, now cached.
    let cached = client.request(TRIANGLE_VS_STAR_RENAMED);
    assert!(
        cached.starts_with("ok verdict=contained provenance=cached"),
        "{cached}"
    );
    assert!(
        cached.ends_with(&pair_token),
        "same canonical pair: {cached}"
    );

    let refuted = client.request(STAR_VS_TRIANGLE);
    assert!(
        refuted.starts_with("ok verdict=not-contained witness=verified provenance=fresh"),
        "{refuted}"
    );

    assert_eq!(client.request(""), "ok skip");
    assert_eq!(client.request("# comment only"), "ok skip");
    assert_eq!(client.request("!ping"), "ok pong proto=1");
    assert_eq!(
        client.request("!stats"),
        "ok stats traffic=3 fresh=2 cached=1 restored=0 deduped=0 entries=2 \
         panics=0 budget-exhausted=0"
    );
    let parse_error = client.request("Q1() :- R(x,y)");
    assert!(parse_error.starts_with("error parse "), "{parse_error}");
    let unknown_admin = client.request("!reboot");
    assert!(unknown_admin.starts_with("error parse "), "{unknown_admin}");
    let no_snapshot = client.request("!snapshot");
    assert!(
        no_snapshot.starts_with("error snapshot no snapshot path configured"),
        "{no_snapshot}"
    );
    assert_eq!(client.request("!quit"), "ok bye");
    // `!quit` closed only this connection; the daemon still accepts.
    let mut second = Client::connect(daemon.addr);
    assert_eq!(second.request("!ping"), "ok pong proto=1");

    let summary = daemon.stop();
    assert_eq!(summary.connections, 2);
    assert!(summary.snapshot.is_none(), "no snapshot configured");
}

#[test]
fn connection_cap_turns_clients_away_with_busy() {
    let daemon = start_daemon(ServeOptions {
        max_conns: 1,
        ..ServeOptions::default()
    });
    let mut admitted = Client::connect(daemon.addr);
    assert_eq!(admitted.request("!ping"), "ok pong proto=1");

    // Second client while the first is still open: one busy line, no banner.
    let rejected = TcpStream::connect(daemon.addr).expect("connect");
    rejected
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut first_line = String::new();
    BufReader::new(rejected).read_line(&mut first_line).unwrap();
    assert_eq!(first_line.trim_end(), "busy connections max=1");

    // The admitted client is unaffected and keeps its slot until it quits.
    assert!(admitted.request(TRIANGLE_VS_STAR).contains("ok verdict"));
    assert_eq!(admitted.request("!quit"), "ok bye");
    daemon.stop();
}

#[test]
fn shutdown_admin_command_stops_the_whole_daemon() {
    let daemon = start_daemon(ServeOptions::default());
    let mut client = Client::connect(daemon.addr);
    assert!(client.request(TRIANGLE_VS_STAR).starts_with("ok verdict"));
    assert_eq!(client.request("!shutdown"), "ok shutting-down");
    // The daemon thread exits on its own — no ShutdownHandle involved.
    let summary = daemon.thread.join().expect("daemon thread");
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.requests, 2);
    // The connection was closed by the server side.
    let mut rest = String::new();
    client.reader.read_to_string(&mut rest).expect("read EOF");
    assert!(rest.is_empty(), "no bytes after the shutdown ack: {rest:?}");
}

#[test]
fn restart_from_snapshot_answers_previous_traffic_cached() {
    let snapshot = temp_path("restart");
    let serve_options = || ServeOptions {
        snapshot: Some(snapshot.clone()),
        ..ServeOptions::default()
    };

    // First life: compute fresh answers, shut down (writes the snapshot).
    let daemon = start_daemon(serve_options());
    let mut client = Client::connect(daemon.addr);
    let first_contained = client.request(TRIANGLE_VS_STAR);
    let first_refuted = client.request(STAR_VS_TRIANGLE);
    assert!(first_contained.starts_with("ok verdict=contained provenance=fresh"));
    assert!(first_refuted.starts_with("ok verdict=not-contained"));
    let summary = daemon.stop();
    let saved = summary.snapshot.expect("shutdown snapshot");
    assert_eq!(saved.entries, 2);

    // Second life: a fresh engine restored from the snapshot answers the
    // same traffic as cached, with identical verdict tokens.
    let engine = Arc::new(Engine::default());
    match engine.load_snapshot(&snapshot) {
        bqc_engine::SnapshotLoad::Restored { entries, .. } => assert_eq!(entries, 2),
        other => panic!("expected a restored snapshot, got {other:?}"),
    }
    let daemon = start_daemon_with(engine, serve_options());
    let mut client = Client::connect(daemon.addr);
    let second_contained = client.request(TRIANGLE_VS_STAR);
    let second_refuted = client.request(STAR_VS_TRIANGLE);
    // Byte-identical verdict/witness/pair tokens; only provenance and
    // timing may differ (fresh → cached, micros → 0).
    let stable = |response: &str| {
        response
            .split(' ')
            .filter(|token| !token.starts_with("provenance=") && !token.starts_with("micros="))
            .collect::<Vec<_>>()
            .join(" ")
    };
    assert_eq!(stable(&first_contained), stable(&second_contained));
    assert_eq!(stable(&first_refuted), stable(&second_refuted));
    assert!(
        second_contained.contains("provenance=cached"),
        "{second_contained}"
    );
    assert!(
        second_refuted.contains("provenance=cached"),
        "{second_refuted}"
    );
    assert_eq!(
        client.request("!stats"),
        "ok stats traffic=2 fresh=0 cached=0 restored=2 deduped=0 entries=2 \
         panics=0 budget-exhausted=0"
    );
    daemon.stop();
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn corrupt_snapshot_degrades_to_cold_start() {
    let snapshot = temp_path("corrupt");
    let daemon = start_daemon(ServeOptions {
        snapshot: Some(snapshot.clone()),
        ..ServeOptions::default()
    });
    let mut client = Client::connect(daemon.addr);
    assert!(client.request(TRIANGLE_VS_STAR).starts_with("ok verdict"));
    daemon.stop();

    // Flip one payload byte on disk.
    let mut bytes = std::fs::read(&snapshot).expect("snapshot written");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snapshot, &bytes).unwrap();

    // The restored engine refuses + quarantines, and the daemon serves cold.
    let engine = Arc::new(Engine::default());
    match engine.load_snapshot(&snapshot) {
        bqc_engine::SnapshotLoad::Quarantined { quarantined_to, .. } => {
            let quarantined = quarantined_to.expect("quarantine path");
            assert!(quarantined.exists(), "quarantined file kept for forensics");
            let _ = std::fs::remove_file(quarantined);
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert!(!snapshot.exists(), "bad file moved out of the way");
    let daemon = start_daemon_with(
        engine,
        ServeOptions {
            snapshot: Some(snapshot.clone()),
            ..ServeOptions::default()
        },
    );
    let mut client = Client::connect(daemon.addr);
    let cold = client.request(TRIANGLE_VS_STAR);
    assert!(
        cold.starts_with("ok verdict=contained provenance=fresh"),
        "{cold}"
    );
    // Shutdown writes a fresh, valid snapshot to the original path.
    let summary = daemon.stop();
    assert_eq!(summary.snapshot.expect("fresh snapshot").entries, 1);
    let engine = Arc::new(Engine::default());
    assert!(matches!(
        engine.load_snapshot(&snapshot),
        bqc_engine::SnapshotLoad::Restored { entries: 1, .. }
    ));
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn idle_connections_are_timed_out_freeing_their_slot() {
    let daemon = start_daemon(ServeOptions {
        max_conns: 1,
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServeOptions::default()
    });
    let mut idler = Client::connect(daemon.addr);
    // A slowloris client: dribble a partial line and go quiet.  The partial
    // bytes must not reset the idle clock.
    write!(idler.writer, "Q1() :- ").expect("dribble");
    assert_eq!(idler.read_line(), "error timeout idle for 150ms, closing");
    let mut rest = String::new();
    idler
        .reader
        .read_to_string(&mut rest)
        .expect("server closed the connection");
    assert!(rest.is_empty(), "nothing after the timeout line: {rest:?}");

    // The evicted slot is free again: with max_conns=1, a new client is
    // admitted rather than turned away with `busy`.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut next = loop {
        // The slot count is decremented just after the handler thread
        // closes the socket; briefly retry the races where we connect
        // in between.
        let stream = TcpStream::connect(daemon.addr).expect("connect");
        let writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);
        let mut banner = String::new();
        reader.read_line(&mut banner).expect("first line");
        if banner.trim_end() == "ok bqc-serve proto=1" {
            break Client { writer, reader };
        }
        assert!(
            banner.starts_with("busy connections"),
            "unexpected first line: {banner:?}"
        );
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after idle timeout"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(next.request("!ping"), "ok pong proto=1");
    daemon.stop();
}

#[test]
fn deadline_exceeded_requests_answer_resource_exhausted_and_are_not_cached() {
    let mut engine_options = EngineOptions {
        cache_shards: 2,
        shard_capacity: 64,
        ..EngineOptions::default()
    };
    // An already-expired per-request deadline: every decision degrades
    // before its first pipeline stage.
    engine_options.decide.budget.deadline = Some(Duration::ZERO);
    let daemon = start_daemon_with(
        Arc::new(Engine::new(engine_options)),
        ServeOptions::default(),
    );
    let mut client = Client::connect(daemon.addr);
    let degraded = client.request(TRIANGLE_VS_STAR);
    assert!(
        degraded.starts_with(
            "ok verdict=unknown obstruction=resource-exhausted resource=deadline \
             provenance=fresh"
        ),
        "{degraded}"
    );
    // Degraded answers are never cached: the same question is decided
    // fresh again (and the fault counter has moved).
    let again = client.request(TRIANGLE_VS_STAR);
    assert!(again.contains("provenance=fresh"), "{again}");
    let stats = client.request("!stats");
    assert!(
        stats.ends_with("entries=0 panics=0 budget-exhausted=2"),
        "{stats}"
    );
    daemon.stop();
}

#[test]
fn concurrent_clients_share_one_cache() {
    let daemon = start_daemon(ServeOptions::default());
    let addr = daemon.addr;
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let response = client.request(TRIANGLE_VS_STAR);
                    client.request("!quit");
                    response
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // All four clients got the same verdict for the same canonical pair;
    // across micro-batches the engine computed it at most... exactly once
    // fresh — the rest were served as cached or deduped-in-flight.
    let fresh = responses
        .iter()
        .filter(|r| r.contains("provenance=fresh"))
        .count();
    assert_eq!(
        fresh, 1,
        "one fresh computation for one canonical pair: {responses:?}"
    );
    for response in &responses {
        assert!(response.starts_with("ok verdict=contained"), "{response}");
    }
    daemon.stop();
}
