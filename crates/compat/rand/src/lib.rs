//! A vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the small slice of `rand`'s API that the benchmark workload
//! generators and a few tests use is reimplemented here:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (splitmix64);
//! * [`SeedableRng::seed_from_u64`] — the only constructor the workspace uses;
//! * [`Rng::gen_range`] — uniform sampling from half-open and inclusive
//!   integer ranges;
//! * [`Rng::gen_bool`] — a Bernoulli draw.
//!
//! The signatures match `rand 0.8`, so replacing the `rand` entry in the
//! workspace `[workspace.dependencies]` table with a registry version is a
//! drop-in change.  The generator is *not* cryptographically secure and the
//! range sampling uses a plain modulo reduction — both are irrelevant for the
//! deterministic workload generation this workspace needs.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let a = rng.gen_range(0i64..10);
//! assert!((0..10).contains(&a));
//! // Determinism: the same seed replays the same stream.
//! let mut rng2 = StdRng::seed_from_u64(42);
//! assert_eq!(rng2.gen_range(0i64..10), a);
//! ```

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator. Only [`SeedableRng::seed_from_u64`] is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        // 53 uniform mantissa bits in [0, 1), the standard conversion.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to sample one of its values.
pub trait SampleRange<T> {
    /// Draws a single uniform sample from the range.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128) % width) as i128;
                ((self.start as i128) + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let offset = ((rng.next_u64() as u128) % width) as i128;
                ((start as i128) + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// A deterministic splitmix64 generator, stand-in for `rand`'s `StdRng`.
    ///
    /// The stream differs from the real `StdRng` (which is ChaCha-based), but
    /// every use in this workspace only requires determinism in the seed, not
    /// a particular stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014) — passes BigCrush, one
            // multiply-xor-shift chain per output, no state beyond 64 bits.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn in_range_and_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            assert_eq!(x, b.gen_range(-5i64..17));
        }
    }

    #[test]
    fn covers_full_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(3i32..3);
    }
}
