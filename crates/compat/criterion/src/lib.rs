//! A vendored, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so this crate reimplements the slice of criterion's API that the
//! `bqc-bench` suite uses: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.  Signatures match `criterion 0.5`, so swapping
//! the `criterion` entry in `[workspace.dependencies]` for a registry version
//! is a drop-in change.
//!
//! Unlike the real criterion it does no statistical analysis: each benchmark
//! is warmed up, then timed for `sample_size` samples whose iteration count
//! is chosen to fill the configured measurement time, and the mean, minimum
//! and maximum per-iteration times are printed.  That is enough to compare
//! hot paths across commits by eye; it is not a substitute for criterion's
//! regression testing.
//!
//! ## CI hooks
//!
//! Two environment variables wire the harness into the repository's
//! bench-regression gate (see `.github/workflows/ci.yml` and
//! `scripts/bench_compare.sh`):
//!
//! * `BQC_BENCH_QUICK=1` caps the warm-up at 100 ms, the measurement budget
//!   at 400 ms and the sample count at 5, so a full suite finishes in CI
//!   seconds instead of minutes;
//! * `BQC_BENCH_JSON=<path>` appends one JSON-lines record
//!   `{"id": "<label>", "median_ns": <f64>}` per benchmark to `<path>`,
//!   which `bench_compare collect` turns into a committed baseline document.

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, created by [`criterion_group!`].
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark warm-up duration.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_benchmark(id, &config, &mut routine);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = Some(duration);
        self
    }

    fn config(&self) -> Criterion {
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        if let Some(duration) = self.measurement_time {
            config.measurement_time = duration;
        }
        config
    }

    /// Benchmarks `routine`, labelled `id`, within this group.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, &self.config(), &mut routine);
        self
    }

    /// Benchmarks `routine` with an explicit input value, criterion-style.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, &self.config(), &mut |b: &mut Bencher| {
            routine(b, input)
        });
        self
    }

    /// Ends the group. (No-op in this stand-in; kept for API compatibility.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(routine: &mut F) -> Duration {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    bencher.elapsed
}

/// `true` when `BQC_BENCH_QUICK` asks for the abbreviated CI-gate run.
fn quick_mode() -> bool {
    std::env::var("BQC_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, config: &Criterion, routine: &mut F) {
    let mut config = config.clone();
    if quick_mode() {
        config.warm_up_time = config.warm_up_time.min(Duration::from_millis(100));
        config.measurement_time = config.measurement_time.min(Duration::from_millis(400));
        config.sample_size = config.sample_size.clamp(2, 5);
    }
    // Warm-up: run until the warm-up budget is exhausted, tracking the
    // per-iteration cost so the measurement phase can size its samples.
    let warm_up_start = Instant::now();
    let mut per_iter = time_once(routine);
    while warm_up_start.elapsed() < config.warm_up_time {
        per_iter = (per_iter + time_once(routine)) / 2;
    }
    let per_iter_ns = per_iter.as_nanos().max(1);

    // Choose the per-sample iteration count so all samples together roughly
    // fill the measurement budget.
    let budget_ns = config.measurement_time.as_nanos();
    let iters_per_sample =
        ((budget_ns / config.sample_size as u128) / per_iter_ns).clamp(1, u64::MAX as u128) as u64;

    let mut samples = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        samples.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = samples[samples.len() / 2];
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples × {} iters)",
        format_ns(samples[0]),
        format_ns(mean),
        format_ns(*samples.last().unwrap()),
        samples.len(),
        iters_per_sample,
    );
    if let Ok(path) = std::env::var("BQC_BENCH_JSON") {
        if !path.is_empty() {
            if let Err(error) = append_json_record(&path, label, median) {
                eprintln!("warning: could not append to {path}: {error}");
            }
        }
    }
}

/// Appends one `{"id": ..., "median_ns": ...}` JSON-lines record to `path`.
fn append_json_record(path: &str, label: &str, median_ns: f64) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let escaped: String = label
        .chars()
        .flat_map(|ch| match ch {
            '"' | '\\' => vec!['\\', ch],
            _ => vec![ch],
        })
        .collect();
    writeln!(
        file,
        "{{\"id\": \"{escaped}\", \"median_ns\": {median_ns:.1}}}"
    )
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion-style.
///
/// Both the `name = …; config = …; targets = …` form and the positional
/// `criterion_group!(name, target, …)` form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("solve", 5).label, "solve/5");
        assert_eq!(BenchmarkId::from_parameter("n=3").label, "n=3");
    }

    #[test]
    fn json_records_are_appended() {
        let path =
            std::env::temp_dir().join(format!("bqc_bench_json_{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        append_json_record(&path_str, "group/bench \"x\"/3", 1234.5).unwrap();
        append_json_record(&path_str, "group/other", 7.0).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("{\"id\": \"group/bench \\\"x\\\"/3\", \"median_ns\": 1234.5}"));
        assert_eq!(contents.lines().count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn runs_a_tiny_benchmark() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("noop", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }
}
