//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Unlike the real proptest there is no shrinking tree: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps every generated value through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Keeps drawing until `filter` accepts a value (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, filter: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            filter,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    filter: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.source.generate(rng);
            if (self.filter)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String strategies from a regex-like pattern, as in the real proptest.
///
/// Supports the subset of regex syntax the workspace's tests use: literal
/// characters, character classes (`[a-z0-9]`, with ranges), and the
/// quantifiers `?`, `*`, `+`, `{m}` and `{m,n}` applied to the preceding
/// atom. Unbounded quantifiers are capped at 8 repetitions.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (choices, min, max) in atoms {
            let count = min + rng.below((max - min + 1) as u128) as usize;
            for _ in 0..count {
                out.push(choices[rng.below(choices.len() as u128) as usize]);
            }
        }
        out
    }
}

/// Parses a pattern into `(alternatives, min_reps, max_reps)` atoms.
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed character class")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                match chars[i - 1] {
                    'd' => ('0'..='9').collect(),
                    c => vec![c],
                }
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // An optional quantifier applies to the atom just parsed.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unclosed repetition")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repetition bound"),
                            hi.trim().parse().expect("bad repetition bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad repetition count");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(!choices.is_empty(), "empty character class in pattern");
        atoms.push((choices, min, max));
    }
    atoms
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Two's-complement trick: sign-extending both endpoints into
                // u128 makes `end - start` the true width for signed types
                // as well as unsigned ones.
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = rng.below(width);
                self.start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..500 {
            let v = (-7i64..13).generate(&mut rng);
            assert!((-7..13).contains(&v));
            let u = (0u32..3).generate(&mut rng);
            assert!(u < 3);
            let w = (-10_000_000_000_000i128..10_000_000_000_000).generate(&mut rng);
            assert!((-10_000_000_000_000..10_000_000_000_000).contains(&w));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::from_name("compose");
        let strategy = (0i64..5, 1i64..6).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((1..=45).contains(&v));
        }
    }

    #[test]
    fn string_patterns_match_their_shape() {
        let mut rng = TestRng::from_name("pattern");
        for _ in 0..100 {
            let s = "-?[1-9][0-9]{0,6}".generate(&mut rng);
            let digits = s.strip_prefix('-').unwrap_or(&s);
            assert!(!digits.is_empty() && digits.len() <= 7, "bad length: {s:?}");
            assert!(!digits.starts_with('0'), "leading zero: {s:?}");
            assert!(
                digits.chars().all(|c| c.is_ascii_digit()),
                "bad char: {s:?}"
            );
        }
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = TestRng::from_name("just");
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
