//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// A type with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// The canonical strategy for `T`, e.g. `any::<i64>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_is_deterministic_in_the_rng() {
        let mut a = TestRng::from_name("any");
        let mut b = TestRng::from_name("any");
        assert_eq!(any::<i64>().generate(&mut a), any::<i64>().generate(&mut b));
    }

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = TestRng::from_name("bool");
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[any::<bool>().generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
