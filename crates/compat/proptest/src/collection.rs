//! Collection strategies: [fn@vec].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// An (inclusive-start, exclusive-end) range of collection sizes.
///
/// Built via `From<usize>` (an exact size) or `From<Range<usize>>`, matching
/// the conversions the real proptest accepts in practice.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            start: exact,
            end: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            start: range.start,
            end: range.end,
        }
    }
}

/// A strategy producing `Vec`s whose elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors with lengths drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u128;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_vectors() {
        let mut rng = TestRng::from_name("vec-exact");
        let strategy = vec(0i64..10, 5usize);
        for _ in 0..20 {
            let v = strategy.generate(&mut rng);
            assert_eq!(v.len(), 5);
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn ranged_size_vectors() {
        let mut rng = TestRng::from_name("vec-range");
        let strategy = vec((0i64..4, 0i64..4), 0..10);
        let mut lengths = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!(v.len() < 10);
            lengths.insert(v.len());
        }
        assert!(lengths.len() > 3, "lengths should vary: {lengths:?}");
    }
}
