//! A vendored, dependency-free stand-in for the `proptest`
//! property-testing framework.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the slice of proptest's API used by the `bqc-arith` unit
//! tests and the workspace-level `tests/properties.rs` suite is
//! reimplemented here:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(…)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`],
//! * integer-range strategies (`-100i64..100`), [`arbitrary::any`],
//!   tuple strategies, [`collection::vec`] and
//!   [`strategy::Strategy::prop_map`],
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Semantics differ from the real crate in one deliberate way: there is **no
//! shrinking**.  A failing case panics with the generated values' `Debug`
//! output instead of a minimized counterexample.  Generation is seeded
//! deterministically per test (from the test's module path), so failures are
//! reproducible run to run.  Swapping the `proptest` entry in the workspace
//! `[workspace.dependencies]` table for a registry version restores the real
//! framework without source changes.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares a block of property tests.
///
/// Each `fn name(arg in strategy, …) { body }` item expands to a regular
/// `#[test]`-style function that draws `config.cases` random cases and runs
/// the body on each.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     // Under `#[cfg(test)]` this would carry the `#[test]` attribute;
///     // here the generated function is simply called directly.
///     fn addition_commutes(a in -1000i64..1000, b in -1000i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name),
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).saturating_add(100);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases in {} ({} accepted of {} wanted)",
                    stringify!($name), accepted, config.cases,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let case_debug = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ "(case {})"),
                    $(&$arg,)+ attempts,
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        continue;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest case failed in {}: {}\n    inputs: {}",
                            stringify!($name), message, case_debug,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left,
        );
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
