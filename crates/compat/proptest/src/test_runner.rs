//! Test-runner configuration, case-level errors and the deterministic RNG.

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; this stand-in halves that to
        // keep exact-bignum property tests quick under `cargo test`.
        ProptestConfig { cases: 128 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — it does not count as a
    /// failure and another case is drawn in its place.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing outcome with the given message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded (assumption-violating) outcome with the given reason.
    pub fn reject<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// The deterministic generator behind every strategy.
///
/// Seeded from the test's fully qualified name, so each test draws a stable
/// stream of cases across runs (there is no failure-persistence file as in
/// the real proptest; determinism makes failures reproducible instead).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Produces the next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Produces the next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// A uniform sample from `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "cannot sample below zero");
        self.next_u128() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::from_name("range");
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }
}
