//! Linear expressions of entropic terms.
//!
//! The paper manipulates two closely related syntactic objects:
//!
//! * a plain *linear expression* `E(h) = Σ_X c_X · h(X)` (the body of an
//!   information inequality, Eq. 2) — [`EntropyExpr`];
//! * a *conditional linear expression* `E(h) = Σ d_{Y|X} · h(Y|X)` with
//!   `d_{Y|X} ≥ 0` (Section 3.2), whose structure matters for Theorem 3.6:
//!   the expression is *unconditioned* when every `X = ∅` and *simple* when
//!   every `|X| ≤ 1` — [`ConditionalExpr`].
//!
//! Both kinds can be composed with a variable substitution `φ` (written
//! `E ∘ φ` in the paper, Section 4), evaluated on exact [`SetFunction`]s or on
//! floating-point [`RealSetFunction`]s, and flattened to sparse coefficient
//! form for the LP-based validity checker in `bqc-iip`.

use crate::setfn::{RealSetFunction, SetFunction};
use bqc_arith::Rational;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A set of variable names (a term `h(S)` refers to such a set).
pub type VarSet = BTreeSet<String>;

/// A linear expression `Σ_S c_S · h(S)` over named variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EntropyExpr {
    terms: BTreeMap<VarSet, Rational>,
}

impl EntropyExpr {
    /// The zero expression.
    pub fn zero() -> EntropyExpr {
        EntropyExpr::default()
    }

    /// A single term `coeff · h(set)`.
    pub fn term(coeff: Rational, set: impl IntoIterator<Item = impl Into<String>>) -> EntropyExpr {
        let mut e = EntropyExpr::zero();
        e.add_term(coeff, set);
        e
    }

    /// Adds `coeff · h(set)` to the expression.  Terms over the empty set are
    /// dropped (`h(∅) = 0`), and cancelling terms are removed.
    pub fn add_term(&mut self, coeff: Rational, set: impl IntoIterator<Item = impl Into<String>>) {
        let set: VarSet = set.into_iter().map(Into::into).collect();
        if set.is_empty() || coeff.is_zero() {
            return;
        }
        let entry = self.terms.entry(set.clone()).or_insert_with(Rational::zero);
        *entry = &*entry + &coeff;
        if entry.is_zero() {
            self.terms.remove(&set);
        }
    }

    /// Adds a conditional term `coeff · h(Y|X) = coeff·h(X∪Y) − coeff·h(X)`.
    pub fn add_conditional(&mut self, coeff: Rational, y: &VarSet, x: &VarSet) {
        let union: VarSet = x.union(y).cloned().collect();
        self.add_term(coeff.clone(), union);
        self.add_term(-coeff, x.clone());
    }

    /// The sparse terms `(S, c_S)`.
    pub fn terms(&self) -> impl Iterator<Item = (&VarSet, &Rational)> {
        self.terms.iter()
    }

    /// Number of non-zero terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// All variables mentioned by the expression.
    pub fn variables(&self) -> VarSet {
        self.terms.keys().flatten().cloned().collect()
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &EntropyExpr) -> EntropyExpr {
        let mut result = self.clone();
        for (set, coeff) in &other.terms {
            result.add_term(coeff.clone(), set.iter().cloned());
        }
        result
    }

    /// Scales the expression by a rational.
    pub fn scale(&self, factor: &Rational) -> EntropyExpr {
        let mut result = EntropyExpr::zero();
        for (set, coeff) in &self.terms {
            result.add_term(coeff * factor, set.iter().cloned());
        }
        result
    }

    /// Negation.
    pub fn negate(&self) -> EntropyExpr {
        self.scale(&-Rational::one())
    }

    /// Applies a variable substitution `φ` to every term:
    /// `h(S) ↦ h(φ(S))` (Section 4, "E ∘ φ").  Variables missing from the map
    /// are kept unchanged.
    pub fn compose(&self, phi: &BTreeMap<String, String>) -> EntropyExpr {
        let mut result = EntropyExpr::zero();
        for (set, coeff) in &self.terms {
            let image: VarSet = set
                .iter()
                .map(|v| phi.get(v).cloned().unwrap_or_else(|| v.clone()))
                .collect();
            result.add_term(coeff.clone(), image);
        }
        result
    }

    /// Evaluates the expression on an exact set function.
    ///
    /// # Panics
    ///
    /// Panics if the expression mentions a variable outside `h`'s universe.
    pub fn evaluate(&self, h: &SetFunction) -> Rational {
        let mut acc = Rational::zero();
        for (set, coeff) in &self.terms {
            let mask = h.mask_of(set.iter().map(|s| s.as_str()));
            acc += coeff * h.value(mask);
        }
        acc
    }

    /// Evaluates the expression on a floating-point set function.
    pub fn evaluate_f64(&self, h: &RealSetFunction) -> f64 {
        let mut acc = 0.0;
        for (set, coeff) in &self.terms {
            acc += coeff.to_f64() * h.value_of(set.iter().map(|s| s.as_str()));
        }
        acc
    }
}

impl fmt::Display for EntropyExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (set, coeff)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            let names: Vec<&str> = set.iter().map(|s| s.as_str()).collect();
            write!(f, "{}·h({})", coeff, names.join(""))?;
        }
        Ok(())
    }
}

/// A conditional linear expression `Σ d_{Y|X} · h(Y|X)` with `d ≥ 0`.
///
/// The structural classification ([`ConditionalExpr::is_simple`] /
/// [`ConditionalExpr::is_unconditioned`]) is what Theorem 3.6 keys on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConditionalExpr {
    terms: Vec<(Rational, VarSet, VarSet)>,
}

impl ConditionalExpr {
    /// The empty expression.
    pub fn new() -> ConditionalExpr {
        ConditionalExpr::default()
    }

    /// Adds a term `coeff · h(y | x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient is negative (conditional linear expressions
    /// have non-negative coefficients by definition).
    pub fn add(&mut self, coeff: Rational, y: VarSet, x: VarSet) {
        assert!(
            !coeff.is_negative(),
            "conditional expressions have non-negative coefficients"
        );
        if coeff.is_zero() {
            return;
        }
        self.terms.push((coeff, y, x));
    }

    /// The terms `(d, Y, X)`.
    pub fn terms(&self) -> &[(Rational, VarSet, VarSet)] {
        &self.terms
    }

    /// `true` iff every condition `X` is empty.
    pub fn is_unconditioned(&self) -> bool {
        self.terms.iter().all(|(_, _, x)| x.is_empty())
    }

    /// `true` iff every condition `X` has at most one variable ("simple").
    pub fn is_simple(&self) -> bool {
        self.terms.iter().all(|(_, _, x)| x.len() <= 1)
    }

    /// All variables mentioned.
    pub fn variables(&self) -> VarSet {
        self.terms
            .iter()
            .flat_map(|(_, y, x)| y.iter().chain(x.iter()))
            .cloned()
            .collect()
    }

    /// Applies a variable substitution to both `Y` and `X` of every term.
    pub fn compose(&self, phi: &BTreeMap<String, String>) -> ConditionalExpr {
        let map = |set: &VarSet| -> VarSet {
            set.iter()
                .map(|v| phi.get(v).cloned().unwrap_or_else(|| v.clone()))
                .collect()
        };
        ConditionalExpr {
            terms: self
                .terms
                .iter()
                .map(|(c, y, x)| (c.clone(), map(y), map(x)))
                .collect(),
        }
    }

    /// Flattens into a plain linear expression.
    pub fn flatten(&self) -> EntropyExpr {
        let mut expr = EntropyExpr::zero();
        for (coeff, y, x) in &self.terms {
            expr.add_conditional(coeff.clone(), y, x);
        }
        expr
    }

    /// Evaluates on an exact set function.
    pub fn evaluate(&self, h: &SetFunction) -> Rational {
        self.flatten().evaluate(h)
    }
}

impl fmt::Display for ConditionalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (coeff, y, x)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            let y_names: Vec<&str> = y.iter().map(|s| s.as_str()).collect();
            if x.is_empty() {
                write!(f, "{}·h({})", coeff, y_names.join(""))?;
            } else {
                let x_names: Vec<&str> = x.iter().map(|s| s.as_str()).collect();
                write!(f, "{}·h({}|{})", coeff, y_names.join(""), x_names.join(""))?;
            }
        }
        Ok(())
    }
}

/// Builds a [`VarSet`] from string-likes — a small convenience for tests and
/// callers.
pub fn varset(names: impl IntoIterator<Item = impl Into<String>>) -> VarSet {
    names.into_iter().map(Into::into).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::{int, ratio};

    fn independent_bits() -> SetFunction {
        SetFunction::from_values(
            vec!["X".into(), "Y".into(), "Z".into()],
            vec![
                int(0),
                int(1),
                int(1),
                int(2),
                int(1),
                int(2),
                int(2),
                int(3),
            ],
        )
    }

    #[test]
    fn build_and_evaluate() {
        // E = 3 h(X) + 4 h(YZ) - 6 h(Z)  (Example 4.1 flavor).
        let mut e = EntropyExpr::zero();
        e.add_term(int(3), ["X"]);
        e.add_term(int(4), ["Y", "Z"]);
        e.add_term(int(-6), ["Z"]);
        let h = independent_bits();
        assert_eq!(e.evaluate(&h), int(3 + 8 - 6));
        assert_eq!(e.num_terms(), 3);
        assert_eq!(e.variables(), varset(["X", "Y", "Z"]));
    }

    #[test]
    fn terms_cancel_and_empty_set_is_dropped() {
        let mut e = EntropyExpr::zero();
        e.add_term(int(2), ["X"]);
        e.add_term(int(-2), ["X"]);
        e.add_term(int(5), Vec::<String>::new());
        assert!(e.is_zero());
    }

    #[test]
    fn conditional_terms_expand() {
        // h(Y|X) on independent bits = 1.
        let mut e = EntropyExpr::zero();
        e.add_conditional(int(1), &varset(["Y"]), &varset(["X"]));
        assert_eq!(e.evaluate(&independent_bits()), int(1));
        assert_eq!(e.num_terms(), 2);
    }

    #[test]
    fn composition_merges_variables() {
        // Example 4.1: E = 3h(Y1) + 4h(Y2Y3) − 6h(Y3), φ(Y1)=X1, φ(Y2)=φ(Y3)=X2
        // gives E∘φ = 3h(X1) − 2h(X2).
        let mut e = EntropyExpr::zero();
        e.add_term(int(3), ["Y1"]);
        e.add_term(int(4), ["Y2", "Y3"]);
        e.add_term(int(-6), ["Y3"]);
        let phi: BTreeMap<String, String> = [
            ("Y1".to_string(), "X1".to_string()),
            ("Y2".to_string(), "X2".to_string()),
            ("Y3".to_string(), "X2".to_string()),
        ]
        .into_iter()
        .collect();
        let composed = e.compose(&phi);
        assert_eq!(composed.num_terms(), 2);
        let mut expected = EntropyExpr::zero();
        expected.add_term(int(3), ["X1"]);
        expected.add_term(int(-2), ["X2"]);
        assert_eq!(composed, expected);
    }

    #[test]
    fn add_scale_negate() {
        let a = EntropyExpr::term(int(1), ["X"]);
        let b = EntropyExpr::term(int(2), ["Y"]);
        let sum = a.add(&b);
        assert_eq!(sum.num_terms(), 2);
        let scaled = sum.scale(&ratio(1, 2));
        assert_eq!(scaled.evaluate(&independent_bits()), ratio(3, 2));
        let negated = scaled.negate();
        assert_eq!(negated.evaluate(&independent_bits()), ratio(-3, 2));
    }

    #[test]
    fn conditional_expr_classification() {
        let mut simple = ConditionalExpr::new();
        simple.add(int(1), varset(["Y1", "Y2"]), varset([] as [&str; 0]));
        simple.add(int(1), varset(["Y3"]), varset(["Y1"]));
        assert!(simple.is_simple());
        assert!(!simple.is_unconditioned());

        let mut unconditioned = ConditionalExpr::new();
        unconditioned.add(int(2), varset(["A"]), varset([] as [&str; 0]));
        assert!(unconditioned.is_unconditioned());
        assert!(unconditioned.is_simple());

        let mut not_simple = ConditionalExpr::new();
        not_simple.add(int(1), varset(["C"]), varset(["A", "B"]));
        assert!(!not_simple.is_simple());
        assert!(!not_simple.is_unconditioned());
    }

    #[test]
    fn conditional_expr_flatten_and_compose() {
        // E_T for the tree {Y1,Y2} - {Y1,Y3}: h(Y1Y2) + h(Y3|Y1).
        let mut et = ConditionalExpr::new();
        et.add(int(1), varset(["Y1", "Y2"]), varset([] as [&str; 0]));
        et.add(int(1), varset(["Y3"]), varset(["Y1"]));
        let flat = et.flatten();
        // = h(Y1Y2) + h(Y1Y3) - h(Y1).
        assert_eq!(flat.num_terms(), 3);
        let phi: BTreeMap<String, String> = [
            ("Y1".to_string(), "X1".to_string()),
            ("Y2".to_string(), "X2".to_string()),
            ("Y3".to_string(), "X2".to_string()),
        ]
        .into_iter()
        .collect();
        let composed = et.compose(&phi);
        assert!(composed.is_simple());
        // flatten(compose) == compose(flatten)
        assert_eq!(composed.flatten(), flat.compose(&phi));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_conditional_coefficient_panics() {
        let mut e = ConditionalExpr::new();
        e.add(int(-1), varset(["X"]), varset([] as [&str; 0]));
    }

    #[test]
    fn display_forms() {
        let mut e = EntropyExpr::zero();
        e.add_term(int(2), ["X", "Y"]);
        e.add_term(int(-1), ["X"]);
        let text = e.to_string();
        assert!(text.contains("h(XY)"));
        assert!(text.contains("-1·h(X)"));
        assert_eq!(EntropyExpr::zero().to_string(), "0");

        let mut c = ConditionalExpr::new();
        c.add(int(1), varset(["Z"]), varset(["X"]));
        assert_eq!(c.to_string(), "1·h(Z|X)");
    }

    #[test]
    fn evaluate_f64_matches_exact_on_integers() {
        let h = independent_bits();
        let real = RealSetFunction::from_values(h.vars().to_vec(), h.to_f64());
        let mut e = EntropyExpr::zero();
        e.add_term(int(3), ["X", "Y"]);
        e.add_term(int(-2), ["Z"]);
        assert!((e.evaluate_f64(&real) - e.evaluate(&h).to_f64()).abs() < 1e-12);
    }
}
