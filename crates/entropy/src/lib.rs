//! # bqc-entropy — information-theory substrate
//!
//! Entropic functions, polymatroids, Shannon inequalities and the special
//! classes of set functions that drive *Bag Query Containment and Information
//! Theory* (PODS 2020):
//!
//! * [`SetFunction`] — exact set functions `h : 2^V → ℚ` with conditional
//!   entropy, conditional mutual information and the Möbius inverse / I-measure
//!   of Appendix B;
//! * [`shannon`] — the elemental inequalities generating the polymatroid cone
//!   `Γ_n`, plus polymatroid / modular membership tests;
//! * [`stepfn`] — step functions `h_W`, modular functions (`M_n`) and normal
//!   functions (`N_n`), with the Möbius-inverse-based decomposition of
//!   Fact B.7;
//! * [mod@normalize] — the constructive Lemma 3.7: dominate any polymatroid from
//!   below by a modular function (preserving `h(V)`) or a normal function
//!   (preserving `h(V)` and all singletons);
//! * [`expr`] — linear and conditional linear expressions of entropic terms,
//!   with composition `E ∘ φ` and the *simple* / *unconditioned*
//!   classification of Theorem 3.6;
//! * [`relation`] — entropies of relations (uniform distribution on the
//!   support), the parity relation of Example B.4, GF(2) group-characterizable
//!   relations, and the normal-function → normal-relation materialization used
//!   by the witness extractor.
//!
//! The chain `M_n ⊆ N_n ⊆ Γ*_n ⊆ Γ_n` (Section 3.2) is mirrored directly in
//! the API: [`shannon::is_modular`] ⊆ [`stepfn::is_normal`] ⊆ entropic (not
//! decidable — witnessed only by explicit relations) ⊆
//! [`shannon::is_polymatroid`].

pub mod expr;
pub mod lee;
pub mod normalize;
pub mod relation;
pub mod separator;
pub mod setfn;
pub mod shannon;
pub mod stepfn;

pub use expr::{varset, ConditionalExpr, EntropyExpr, VarSet};
pub use lee::{functional_dependency_holds, lossless_join_holds, multivalued_dependency_holds};
pub use normalize::{max_construction, modularize, normalize};
pub use relation::{
    entropy_deviation, gf2_group_relation, normal_relation_from_function, parity_relation,
    relation_entropy, totally_uniform_entropy,
};
pub use separator::{elemental_ids, ConeSkeleton, ElementalId, ShannonSeparator, SkeletonCache};
pub use setfn::{all_masks, mask_len, mask_subset, Mask, RealSetFunction, SetFunction};
pub use shannon::{
    elemental_count, elemental_inequalities, is_modular, is_polymatroid, ElementalInequality,
};
pub use stepfn::{is_normal, modular_function, step_function, NormalFunction};

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::int;

    /// The inclusion chain M_n ⊆ N_n ⊆ Γ_n on a few representatives.
    #[test]
    fn inclusion_chain() {
        let vars = vec!["X".to_string(), "Y".to_string(), "Z".to_string()];
        let modular = modular_function(vars.clone(), &[int(1), int(2), int(3)]);
        assert!(is_modular(&modular) && is_normal(&modular) && is_polymatroid(&modular));

        // Step at W = {X}: two variables outside W, so not modular.
        let step = step_function(vars.clone(), 0b001);
        assert!(!is_modular(&step) && is_normal(&step) && is_polymatroid(&step));

        let parity = relation_entropy(&parity_relation(["X", "Y", "Z"]));
        assert!(parity.is_approx_polymatroid(1e-9));
        // The exact parity function is a polymatroid but not normal.
        let exact_parity = SetFunction::from_values(
            vars,
            vec![
                int(0),
                int(1),
                int(1),
                int(2),
                int(1),
                int(2),
                int(2),
                int(2),
            ],
        );
        assert!(!is_normal(&exact_parity) && is_polymatroid(&exact_parity));
    }
}
