//! Lazy separation over the Shannon cone `Γ_n`.
//!
//! The dual description of `Γ_n` has `n + C(n,2)·2^{n−2}` elemental
//! inequalities — exponential in the universe size — but a candidate point
//! `h` can be tested against **all** of them in `O(n²·2^n)` exact arithmetic
//! without ever materializing the constraint list: every elemental
//! inequality is determined by a compact [`ElementalId`] (a variable index
//! for monotonicity, a pair plus a context mask for submodularity), and its
//! left-hand side touches at most four entries of `h`.
//!
//! This is what turns the `Γ_n` validity check of `bqc-iip` from an eager
//! `2^n`-row LP build into a cutting-plane loop: solve a small relaxation,
//! hand the optimal point to [`ShannonSeparator::most_violated`], append the
//! returned rows, repeat.  The separator scanning *every* elemental
//! inequality is the loop's exactness invariant — an empty answer certifies
//! `h ∈ Γ_n`.
//!
//! [`ConeSkeleton`] carries the per-universe-size data the loop reuses
//! across probes (the variable-pair list, the seed monotonicity rows), and
//! [`SkeletonCache`] shares skeletons — they are immutable — across provers,
//! decision contexts and engine workers.

use crate::setfn::{all_masks, Mask};
use crate::shannon::elemental_count;
use bqc_arith::Rational;
use bqc_obs::{Budget, Exhausted, LazyCounter};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

static SEPARATION_SCANS: LazyCounter = LazyCounter::new("bqc_entropy_separation_scans_total");
static ELEMENTALS_SCANNED: LazyCounter = LazyCounter::new("bqc_entropy_elementals_scanned_total");
static VIOLATED_ROWS: LazyCounter = LazyCounter::new("bqc_entropy_violated_rows_total");

/// Compact identifier of one elemental inequality of `Γ_n`.
///
/// The constraint it denotes is recovered with [`ElementalId::terms`]; no
/// label or coefficient vector is stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElementalId {
    /// Monotonicity at the top: `h(V) − h(V ∖ {i}) ≥ 0`.
    Monotone {
        /// The dropped variable `i`.
        i: usize,
    },
    /// Elemental submodularity
    /// `h(X∪{i}) + h(X∪{j}) − h(X∪{i,j}) − h(X) ≥ 0` with `i < j` and
    /// `X ⊆ V ∖ {i, j}`.
    Submodular {
        /// First variable of the pair.
        i: usize,
        /// Second variable of the pair (`i < j`).
        j: usize,
        /// The context set `X`, disjoint from `{i, j}`.
        context: Mask,
    },
}

impl ElementalId {
    /// The sparse terms `Σ coeff·h(mask) ≥ 0` of this inequality, as a fixed
    /// array plus its occupied length (allocation-free).  A term with mask 0
    /// refers to `h(∅) = 0` and may be dropped by LP builders.
    pub fn terms(&self, n: usize) -> ([(Mask, i64); 4], usize) {
        match *self {
            ElementalId::Monotone { i } => {
                let full: Mask = ((1u64 << n) - 1) as Mask;
                ([(full, 1), (full & !(1 << i), -1), (0, 0), (0, 0)], 2)
            }
            ElementalId::Submodular { i, j, context } => {
                let xi = context | (1 << i);
                let xj = context | (1 << j);
                let xij = xi | xj;
                ([(xi, 1), (xj, 1), (xij, -1), (context, -1)], 4)
            }
        }
    }

    /// Evaluates the left-hand side on a candidate `h`, given as one value
    /// per subset mask (`h[0]` must be zero).
    pub fn evaluate_on(&self, h: &[Rational], n: usize) -> Rational {
        let (terms, len) = self.terms(n);
        let mut acc = Rational::zero();
        for (mask, coeff) in &terms[..len] {
            match coeff {
                1 => acc += &h[*mask as usize],
                -1 => acc -= &h[*mask as usize],
                _ => {}
            }
        }
        acc
    }

    /// A human-readable label, synthesized on demand (matching the labels of
    /// [`crate::shannon::elemental_inequalities`]).
    pub fn label(&self) -> String {
        match *self {
            ElementalId::Monotone { i } => format!("mono({i})"),
            ElementalId::Submodular { i, j, context } => format!("submod({i},{j}|{context:b})"),
        }
    }
}

/// Enumerates the elemental inequalities of `Γ_n` as compact ids, in the
/// canonical order (monotonicity first, then submodularity by `(i, j)` and
/// ascending context mask) — without allocating labels or term vectors.
pub fn elemental_ids(n: usize) -> impl Iterator<Item = ElementalId> {
    let mono = (0..n).map(|i| ElementalId::Monotone { i });
    let submod = (0..n).flat_map(move |i| {
        ((i + 1)..n).flat_map(move |j| {
            all_masks(n).filter_map(move |context| {
                (context & (1 << i) == 0 && context & (1 << j) == 0)
                    .then_some(ElementalId::Submodular { i, j, context })
            })
        })
    });
    mono.chain(submod)
}

/// Immutable per-universe-size data shared by every lazy `Γ_n` probe: the
/// universe size, the precomputed variable-pair list driving the separation
/// scan, and the seed rows a relaxation starts from.
#[derive(Debug)]
pub struct ConeSkeleton {
    n: usize,
    pairs: Vec<(usize, usize)>,
}

impl ConeSkeleton {
    /// Builds the skeleton for an `n`-variable universe.
    pub fn new(n: usize) -> ConeSkeleton {
        let mut pairs = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i, j));
            }
        }
        ConeSkeleton { n, pairs }
    }

    /// The universe size `n`.
    pub fn universe_size(&self) -> usize {
        self.n
    }

    /// Total number of elemental inequalities of `Γ_n`.
    pub fn num_elemental(&self) -> usize {
        elemental_count(self.n)
    }

    /// The seed rows every relaxation starts from: the `n` monotonicity
    /// inequalities plus, for each variable pair, the two extreme
    /// submodularity contexts — `I(i;j | V∖{i,j}) ≥ 0` (full context) and
    /// `I(i;j) ≥ 0` (empty context).  That is `n + 2·C(n,2)` rows,
    /// quadratic in `n`.
    ///
    /// Monotonicity bounds the recession directions touching `h(V)` (which
    /// containment disjuncts always mention); the two submodularity fringes
    /// empirically pin relaxation vertices close enough to `Γ_n` that the
    /// separation loop converges in a few rounds instead of wandering
    /// through strongly supermodular vertices (measured ~25x on invalid
    /// `Γ_7` probes).
    pub fn seed_rows(&self) -> impl Iterator<Item = ElementalId> + '_ {
        let n = self.n;
        let full: Mask = if n == 0 { 0 } else { ((1u64 << n) - 1) as Mask };
        let mono = (0..n).map(|i| ElementalId::Monotone { i });
        let top = self
            .pairs
            .iter()
            .map(move |&(i, j)| ElementalId::Submodular {
                i,
                j,
                context: full & !(1 << i) & !(1 << j),
            });
        // For n = 2 the full and empty contexts coincide; emit one copy.
        let bottom = self
            .pairs
            .iter()
            .filter(move |_| n > 2)
            .map(|&(i, j)| ElementalId::Submodular { i, j, context: 0 });
        mono.chain(top).chain(bottom)
    }
}

/// Exact separation oracle for `Γ_n` over a shared [`ConeSkeleton`].
#[derive(Clone, Debug)]
pub struct ShannonSeparator {
    skeleton: Arc<ConeSkeleton>,
}

impl ShannonSeparator {
    /// Creates a separator over the given skeleton.
    pub fn new(skeleton: Arc<ConeSkeleton>) -> ShannonSeparator {
        ShannonSeparator { skeleton }
    }

    /// The underlying skeleton.
    pub fn skeleton(&self) -> &ConeSkeleton {
        &self.skeleton
    }

    /// Scans **all** elemental inequalities of `Γ_n` against the candidate
    /// `h` (one value per subset mask, `h[0] = 0`) and returns up to `limit`
    /// violated ones, most violated first (ties in canonical scan order).
    ///
    /// An empty result certifies `h ∈ Γ_n` — this is the exactness invariant
    /// of the separation loop.  The scan is `O(n²·2^n)` exact arithmetic and
    /// never materializes the constraint list.
    pub fn most_violated(&self, h: &[Rational], limit: usize) -> Vec<ElementalId> {
        self.most_violated_budgeted(h, limit, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// [`ShannonSeparator::most_violated`] under a decision [`Budget`]: the
    /// wall clock is checked between variable pairs, and an exhausted budget
    /// aborts the scan with `Err`.
    ///
    /// The distinction between `Err` and `Ok(vec![])` is load-bearing: an
    /// empty *completed* scan certifies `h ∈ Γ_n`, while an aborted scan
    /// certifies nothing — a caller must never treat exhaustion as "no
    /// violated rows".
    pub fn most_violated_budgeted(
        &self,
        h: &[Rational],
        limit: usize,
        budget: &Budget,
    ) -> Result<Vec<ElementalId>, Exhausted> {
        let n = self.skeleton.n;
        debug_assert_eq!(h.len(), 1 << n, "need one candidate value per subset");
        debug_assert!(limit > 0, "a separation round must be able to add a row");
        let mut violated: Vec<(Rational, ElementalId)> = Vec::new();
        let full: Mask = ((1u64 << n) - 1) as Mask;
        budget.check_deadline()?;
        for i in 0..n {
            let value = &h[full as usize] - &h[(full & !(1 << i)) as usize];
            if value.is_negative() {
                violated.push((value, ElementalId::Monotone { i }));
            }
        }
        for &(i, j) in &self.skeleton.pairs {
            // One wall-clock sample per pair bounds deadline overshoot to a
            // single 2^n context sweep.
            budget.check_deadline()?;
            let bits: Mask = (1 << i) | (1 << j);
            for context in all_masks(n) {
                if context & bits != 0 {
                    continue;
                }
                let xi = (context | (1 << i)) as usize;
                let xj = (context | (1 << j)) as usize;
                let xij = (context | bits) as usize;
                let mut value = &h[xi] + &h[xj];
                value -= &h[xij];
                value -= &h[context as usize];
                if value.is_negative() {
                    violated.push((value, ElementalId::Submodular { i, j, context }));
                }
            }
        }
        SEPARATION_SCANS.inc();
        ELEMENTALS_SCANNED.add(self.skeleton.num_elemental() as u64);
        violated.sort_by(|a, b| a.0.cmp(&b.0));
        violated.truncate(limit);
        VIOLATED_ROWS.add(violated.len() as u64);
        Ok(violated.into_iter().map(|(_, id)| id).collect())
    }
}

/// A thread-safe, cheaply clonable cache of [`ConeSkeleton`]s keyed by
/// universe size.  Clones share the underlying map, so a cache created by a
/// batch engine and handed to its per-worker decision contexts builds each
/// skeleton once per process, not once per worker or per probe.
#[derive(Clone, Debug, Default)]
pub struct SkeletonCache {
    inner: Arc<Mutex<HashMap<usize, Arc<ConeSkeleton>>>>,
}

impl SkeletonCache {
    /// Creates an empty cache.
    pub fn new() -> SkeletonCache {
        SkeletonCache::default()
    }

    /// The skeleton for an `n`-variable universe, building it on first use.
    pub fn get(&self, n: usize) -> Arc<ConeSkeleton> {
        let mut map = self.inner.lock().expect("skeleton cache poisoned");
        Arc::clone(
            map.entry(n)
                .or_insert_with(|| Arc::new(ConeSkeleton::new(n))),
        )
    }

    /// Number of universe sizes cached so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("skeleton cache poisoned").len()
    }

    /// The universe sizes with a built skeleton, in ascending order.  This is
    /// the cheap "warm-state manifest" a cache snapshot records: skeletons
    /// are pure functions of `n`, so persisting the sizes alone lets a
    /// restarted process rebuild exactly the skeletons its predecessor had
    /// warmed, without serializing the (large, reconstructible) row data.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .inner
            .lock()
            .expect("skeleton cache poisoned")
            .keys()
            .copied()
            .collect();
        sizes.sort_unstable();
        sizes
    }

    /// `true` iff no skeleton has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setfn::SetFunction;
    use crate::shannon::{elemental_inequalities, is_polymatroid};
    use bqc_arith::int;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ids_enumerate_exactly_the_elemental_inequalities() {
        for n in 0..=5 {
            let ids: Vec<ElementalId> = elemental_ids(n).collect();
            let eager = elemental_inequalities(n);
            assert_eq!(ids.len(), eager.len(), "count for n = {n}");
            for (id, constraint) in ids.iter().zip(&eager) {
                assert_eq!(id.label(), constraint.label, "label for n = {n}");
                let (terms, len) = id.terms(n);
                let sparse: Vec<(Mask, i64)> = terms[..len]
                    .iter()
                    .copied()
                    .filter(|(_, c)| *c != 0)
                    .collect();
                let eager_terms: Vec<(Mask, i64)> = constraint
                    .terms
                    .iter()
                    .map(|(mask, coeff)| (*mask, if coeff == &Rational::one() { 1 } else { -1 }))
                    .collect();
                assert_eq!(sparse, eager_terms, "terms of {}", id.label());
            }
        }
    }

    #[test]
    fn separator_certifies_polymatroids_and_flags_violations() {
        let cache = SkeletonCache::new();
        let separator = ShannonSeparator::new(cache.get(3));
        // The parity function is a polymatroid: nothing is violated.
        let parity = vec![
            int(0),
            int(1),
            int(1),
            int(2),
            int(1),
            int(2),
            int(2),
            int(2),
        ];
        assert!(separator.most_violated(&parity, 16).is_empty());
        // A supermodular bump violates submodularity at the empty context.
        let bump = vec![
            int(0),
            int(1),
            int(1),
            int(3),
            int(1),
            int(2),
            int(2),
            int(3),
        ];
        let violated = separator.most_violated(&bump, 16);
        assert!(!violated.is_empty());
        for id in &violated {
            assert!(id.evaluate_on(&bump, 3).is_negative(), "{}", id.label());
        }
        // The most violated row comes first.
        let worst = id_violation(&violated[0], &bump);
        for id in &violated[1..] {
            assert!(id_violation(id, &bump) >= worst);
        }
        // The certified parity point really is a polymatroid.
        let h = SetFunction::from_values(names(&["X", "Y", "Z"]), parity);
        assert!(is_polymatroid(&h));
    }

    fn id_violation(id: &ElementalId, h: &[Rational]) -> Rational {
        id.evaluate_on(h, 3)
    }

    #[test]
    fn separator_respects_the_limit_and_scan_is_exact() {
        let cache = SkeletonCache::new();
        let separator = ShannonSeparator::new(cache.get(4));
        // A strongly supermodular function: h(S) = |S|² violates many rows.
        let h: Vec<Rational> = all_masks(4)
            .map(|mask| int((mask.count_ones() * mask.count_ones()) as i64))
            .collect();
        let all = separator.most_violated(&h, usize::MAX);
        let capped = separator.most_violated(&h, 3);
        assert_eq!(capped.len(), 3);
        assert_eq!(&all[..3], &capped[..]);
        // Exactness: every violated elemental id is in the uncapped answer.
        let brute: Vec<ElementalId> = elemental_ids(4)
            .filter(|id| id.evaluate_on(&h, 4).is_negative())
            .collect();
        assert_eq!(all.len(), brute.len());
        for id in brute {
            assert!(all.contains(&id), "{} missing", id.label());
        }
    }

    #[test]
    fn skeleton_cache_shares_one_skeleton_per_size() {
        let cache = SkeletonCache::new();
        assert!(cache.is_empty());
        let a = cache.get(5);
        let clone = cache.clone();
        let b = clone.get(5);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(a.universe_size(), 5);
        assert_eq!(a.num_elemental(), elemental_count(5));
        // n monotonicity + 2·C(n,2) extreme-context submodularity rows.
        assert_eq!(a.seed_rows().count(), 5 + 2 * 10);
        // n = 2 collapses the two submodularity fringes onto one row.
        assert_eq!(cache.get(2).seed_rows().count(), 2 + 1);
        assert_eq!(cache.get(1).seed_rows().count(), 1);
        // Seeds are genuine elemental inequalities (no duplicates).
        let seeds: Vec<ElementalId> = a.seed_rows().collect();
        let all: Vec<ElementalId> = crate::separator::elemental_ids(5).collect();
        for seed in &seeds {
            assert!(all.contains(seed), "{} not elemental", seed.label());
        }
        let distinct: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(distinct.len(), seeds.len());
    }
}
