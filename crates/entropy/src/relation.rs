//! Entropies of relations and the paper's special relations.
//!
//! Section 3.2: "Given a V-relation `P`, its entropy is the entropy of the
//! joint distribution on `V`, uniform on the support of `P`."  This module
//! computes that entropy (as an [`RealSetFunction`], since entropies of
//! arbitrary relations are irrational), builds the paper's special relations —
//! the two-tuple step relation `P_W`, the parity relation of Example B.4, and
//! group-characterizable relations from GF(2) vector spaces — and exposes the
//! correspondence between normal *functions* and normal *relations*
//! (Table 1): the entropy of a normal relation built from integral step
//! multiplicities is exactly the corresponding combination of step functions
//! with `log2` coefficients.

use crate::setfn::{all_masks, RealSetFunction};
use crate::stepfn::NormalFunction;
use bqc_arith::Rational;
use bqc_relational::{VRelation, Value};
use std::collections::BTreeMap;

/// Computes the entropy vector of the uniform distribution over the rows of a
/// relation.  The result has one value per subset of columns, in bits.
pub fn relation_entropy(relation: &VRelation) -> RealSetFunction {
    let columns = relation.columns().to_vec();
    let n = columns.len();
    let total = relation.len() as f64;
    let mut values = vec![0.0; 1 << n];
    if relation.is_empty() {
        return RealSetFunction::from_values(columns, values);
    }
    for mask in all_masks(n) {
        if mask == 0 {
            continue;
        }
        let indices: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        let mut counts: BTreeMap<Vec<&Value>, usize> = BTreeMap::new();
        for row in relation.rows() {
            let key: Vec<&Value> = indices.iter().map(|&i| &row[i]).collect();
            *counts.entry(key).or_insert(0) += 1;
        }
        let mut entropy = 0.0;
        for &count in counts.values() {
            let p = count as f64 / total;
            entropy -= p * p.log2();
        }
        values[mask as usize] = entropy;
    }
    RealSetFunction::from_values(columns, values)
}

/// The parity relation of Example B.4:
/// `P = {(x, y, z) ∈ {0,1}³ : x ⊕ y ⊕ z = 0}`, whose entropy is the parity
/// function (1 on singletons, 2 elsewhere) — an entropic function that is
/// **not** normal.
pub fn parity_relation(columns: [&str; 3]) -> VRelation {
    let cols: Vec<String> = columns.iter().map(|s| s.to_string()).collect();
    let mut rel = VRelation::new(cols);
    for x in 0..2i64 {
        for y in 0..2i64 {
            rel.insert(vec![Value::int(x), Value::int(y), Value::int(x ^ y)]);
        }
    }
    rel
}

/// A group-characterizable relation from GF(2) vector spaces (a concrete
/// instance of the Chan–Yeung construction used in Lemma 4.8): the group is
/// `GF(2)^dim` under addition and each variable `i` is assigned the subgroup
/// `G_i = { v : v[j] = 0 for all j ∈ coords[i] }`, so the relation is
/// `{ (a + G_1, …, a + G_n) : a ∈ GF(2)^dim }` with cosets encoded by the
/// coordinates listed in `coords[i]`.
///
/// The resulting relation is totally uniform and its entropy is
/// `h(S) = |⋃_{i ∈ S} coords[i]|` bits.
pub fn gf2_group_relation(columns: &[&str], dim: usize, coords: &[Vec<usize>]) -> VRelation {
    assert_eq!(
        columns.len(),
        coords.len(),
        "one coordinate list per column"
    );
    assert!(dim <= 20, "GF(2) dimension capped at 20");
    for list in coords {
        for &c in list {
            assert!(c < dim, "coordinate {c} out of range for dimension {dim}");
        }
    }
    let cols: Vec<String> = columns.iter().map(|s| s.to_string()).collect();
    let mut rel = VRelation::new(cols);
    for a in 0u32..(1 << dim) {
        let row: Vec<Value> = coords
            .iter()
            .map(|list| {
                // The coset a + G_i is determined by the coordinates in `list`.
                let projected: i64 = list
                    .iter()
                    .fold(0i64, |acc, &c| (acc << 1) | ((a >> c) & 1) as i64);
                Value::int(projected)
            })
            .collect();
        rel.insert(row);
    }
    rel
}

/// Materializes a normal function with **integer** coefficients as a normal
/// relation: each step coefficient `c_W` contributes the step relation with
/// `2^{c_W}` tuples, and the factors are combined with the domain product
/// (Definition B.1).  The entropy of the result is exactly
/// `Σ_W c_W · h_W` bits.
///
/// Returns `None` if any coefficient is not a non-negative integer or if the
/// construction would exceed `max_rows` rows.
pub fn normal_relation_from_function(normal: &NormalFunction, max_rows: u64) -> Option<VRelation> {
    let columns: Vec<String> = normal.vars().to_vec();
    let helper = crate::setfn::SetFunction::zero(columns.clone());
    // Start with a single all-constant row (the empty domain product).
    let mut result = VRelation::from_rows(
        columns.clone(),
        vec![columns
            .iter()
            .map(|_| Value::int(0))
            .collect::<Vec<Value>>()],
    );
    let mut rows: u64 = 1;
    for (&w, coeff) in normal.coefficients() {
        if !coeff.is_integer() || coeff.is_negative() {
            return None;
        }
        let exponent = coeff.numer().to_u64()?;
        let multiplicity = 1u64.checked_shl(u32::try_from(exponent).ok()?)?;
        rows = rows.checked_mul(multiplicity)?;
        if rows > max_rows {
            return None;
        }
        let w_names = helper.names_of(w);
        let step = VRelation::step_relation(&columns, &w_names, multiplicity);
        result = result.domain_product(&step);
    }
    Some(result)
}

/// Numerically compares the entropy of a relation against an exact set
/// function (both over the same column order), returning the largest absolute
/// deviation.  Used in tests to validate the normal-function ↔ normal-relation
/// correspondence.
pub fn entropy_deviation(relation: &VRelation, expected: &crate::setfn::SetFunction) -> f64 {
    let actual = relation_entropy(relation);
    let mut worst: f64 = 0.0;
    for mask in all_masks(expected.num_vars()) {
        let expected_value = expected.value(mask).to_f64();
        let names = expected.names_of(mask);
        let actual_value = actual.value_of(names.iter().map(|s| s.as_str()));
        worst = worst.max((expected_value - actual_value).abs());
    }
    worst
}

/// The exact entropy of a **totally uniform** relation: `h(X) = log2|Π_X(P)|`.
/// Only meaningful when [`VRelation::is_totally_uniform`] holds; the value is
/// returned as an f64 because projections are generally not powers of two.
pub fn totally_uniform_entropy(relation: &VRelation) -> RealSetFunction {
    let columns = relation.columns().to_vec();
    let n = columns.len();
    let mut values = vec![0.0; 1 << n];
    for mask in all_masks(n) {
        if mask == 0 {
            continue;
        }
        let selected: Vec<String> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| columns[i].clone())
            .collect();
        values[mask as usize] = (relation.project(&selected).len() as f64).log2();
    }
    RealSetFunction::from_values(columns, values)
}

/// Convenience: the scaled step coefficient `log2(m)` as a rational when `m`
/// is a power of two, `None` otherwise.
pub fn log2_exact(m: u64) -> Option<Rational> {
    if m == 0 || m.count_ones() != 1 {
        return None;
    }
    Some(Rational::from(m.trailing_zeros() as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setfn::SetFunction;
    use crate::stepfn::NormalFunction;
    use bqc_arith::int;
    use std::collections::BTreeSet;

    #[test]
    fn parity_relation_entropy_matches_parity_function() {
        let rel = parity_relation(["X", "Y", "Z"]);
        assert_eq!(rel.len(), 4);
        assert!(rel.is_totally_uniform());
        let expected = SetFunction::from_values(
            vec!["X".into(), "Y".into(), "Z".into()],
            vec![
                int(0),
                int(1),
                int(1),
                int(2),
                int(1),
                int(2),
                int(2),
                int(2),
            ],
        );
        assert!(entropy_deviation(&rel, &expected) < 1e-9);
    }

    #[test]
    fn step_relation_entropy_is_scaled_step_function() {
        let columns = vec!["A".to_string(), "B".to_string(), "C".to_string()];
        let w: BTreeSet<String> = ["B".to_string()].into_iter().collect();
        let rel = VRelation::step_relation(&columns, &w, 8);
        let step = crate::stepfn::step_function(columns.clone(), 0b010).scale(&int(3));
        assert!(entropy_deviation(&rel, &step) < 1e-9);
    }

    #[test]
    fn uniform_relation_entropy() {
        // A product relation of sizes 2 and 4: h(X)=1, h(Y)=2, h(XY)=3.
        let rel = VRelation::product(&[
            ("X".to_string(), (0..2).map(Value::int).collect()),
            ("Y".to_string(), (0..4).map(Value::int).collect()),
        ]);
        let h = relation_entropy(&rel);
        assert!((h.value_of(["X"]) - 1.0).abs() < 1e-9);
        assert!((h.value_of(["Y"]) - 2.0).abs() < 1e-9);
        assert!((h.value_of(["X", "Y"]) - 3.0).abs() < 1e-9);
        assert!(h.is_approx_polymatroid(1e-9));
        // For totally uniform relations the projection-size formula agrees.
        let tu = totally_uniform_entropy(&rel);
        assert!((tu.value_of(["X", "Y"]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_relation_entropy_is_not_log_of_counts() {
        let rel = VRelation::from_rows(
            vec!["X".to_string(), "Y".to_string()],
            vec![
                vec![Value::int(0), Value::int(0)],
                vec![Value::int(0), Value::int(1)],
                vec![Value::int(1), Value::int(0)],
            ],
        );
        let h = relation_entropy(&rel);
        // Marginal on X: {0: 2/3, 1: 1/3}, entropy ≈ 0.918.
        assert!((h.value_of(["X"]) - 0.9182958340544896).abs() < 1e-9);
        assert!((h.value_of(["X", "Y"]) - (3.0f64).log2()).abs() < 1e-9);
        assert!(h.is_approx_polymatroid(1e-9));
    }

    #[test]
    fn gf2_group_relations_are_totally_uniform() {
        // Three variables reading coordinates {0}, {1}, {0,1} of GF(2)^2: this is
        // exactly the parity pattern.
        let rel = gf2_group_relation(&["X", "Y", "Z"], 2, &[vec![0], vec![1], vec![0, 1]]);
        assert_eq!(rel.len(), 4);
        assert!(rel.is_totally_uniform());
        let h = relation_entropy(&rel);
        assert!((h.value_of(["X"]) - 1.0).abs() < 1e-9);
        assert!((h.value_of(["Z"]) - 2.0).abs() < 1e-9);
        assert!((h.value_of(["X", "Y"]) - 2.0).abs() < 1e-9);
        assert!((h.value_of(["X", "Y", "Z"]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn normal_relation_realizes_normal_function() {
        // h = 2·h_∅ + 1·h_{X}: realized by a 4-row step relation ⊗ 2-row step relation.
        let mut nf = NormalFunction::zero(vec!["X".into(), "Y".into()]);
        nf.add_step(0b00, int(2));
        nf.add_step(0b01, int(1));
        let rel = normal_relation_from_function(&nf, 1_000_000).unwrap();
        assert_eq!(rel.len(), 8);
        assert!(rel.is_totally_uniform());
        assert!(entropy_deviation(&rel, &nf.to_set_function()) < 1e-9);
    }

    #[test]
    fn normal_relation_rejects_fractional_or_huge_coefficients() {
        let mut nf = NormalFunction::zero(vec!["X".into(), "Y".into()]);
        nf.add_step(0b00, bqc_arith::ratio(1, 2));
        assert!(normal_relation_from_function(&nf, 1_000_000).is_none());

        let mut huge = NormalFunction::zero(vec!["X".into(), "Y".into()]);
        huge.add_step(0b00, int(40));
        assert!(normal_relation_from_function(&huge, 1_000).is_none());
    }

    #[test]
    fn empty_relation_entropy_is_zero() {
        let rel = VRelation::new(vec!["X".to_string()]);
        let h = relation_entropy(&rel);
        assert_eq!(h.value_of(["X"]), 0.0);
    }

    #[test]
    fn log2_exact_cases() {
        assert_eq!(log2_exact(8), Some(int(3)));
        assert_eq!(log2_exact(1), Some(int(0)));
        assert_eq!(log2_exact(6), None);
        assert_eq!(log2_exact(0), None);
    }
}
