//! The constructive Lemma 3.7 (Appendix C): dominating a polymatroid from
//! below by a modular / normal function.
//!
//! * [`modularize`] implements item (1): for any polymatroid `h` there is a
//!   modular `h′ ≤ h` with `h′(V) = h(V)` (the chain construction
//!   `h′(X) = Σ_{i∈X} h({i} | {1,…,i−1})`).
//! * [`normalize`] implements item (2) / Theorem C.3: a *normal* `h′ ≤ h`
//!   with `h′(V) = h(V)` **and** `h′({i}) = h({i})` for every variable.  The
//!   construction recurses on the lattice split `L = L_1 ∪ L_2` (subsets
//!   without / with the last variable), normalizes the conditional
//!   polymatroid on `L_2`, and replaces the `L_1` part by the max-construction
//!   of Lemma C.2 applied to the mutual informations `I({i}; {n})`.
//!
//! These constructions are the engine behind Theorem 3.6 ("essentially
//! Shannon") and therefore behind the witness extraction of the decision
//! procedure: an LP counterexample in `Γ_n` is pushed down to `N_n`, whose
//! elements are entropies of normal relations, i.e. of actual databases.

use crate::setfn::{all_masks, Mask, SetFunction};
use bqc_arith::Rational;

/// Item (1) of Lemma 3.7: the modular function
/// `h′(X) = Σ_{i ∈ X} h({i} | {x_1,…,x_{i−1}})`, which satisfies `h′ ≤ h` and
/// `h′(V) = h(V)`.
pub fn modularize(h: &SetFunction) -> SetFunction {
    let n = h.num_vars();
    let mut singleton_weights: Vec<Rational> = Vec::with_capacity(n);
    let mut prefix: Mask = 0;
    for i in 0..n {
        let bit = 1 << i;
        singleton_weights.push(h.conditional(bit, prefix));
        prefix |= bit;
    }
    let mut result = SetFunction::zero(h.vars().to_vec());
    for mask in all_masks(n) {
        let mut value = Rational::zero();
        for (i, w) in singleton_weights.iter().enumerate() {
            if mask & (1 << i) != 0 {
                value += w;
            }
        }
        result.set_value(mask, value);
    }
    result
}

/// Lemma C.2: the "max construction".  Given non-negative `a_1, …, a_n`, the
/// function `h(X) = max{ a_i : i ∈ X }` (0 on the empty set) is a normal
/// polymatroid.
pub fn max_construction(vars: Vec<String>, values: &[Rational]) -> SetFunction {
    assert_eq!(vars.len(), values.len(), "one value per variable");
    let mut h = SetFunction::zero(vars);
    for mask in all_masks(values.len()) {
        if mask == 0 {
            continue;
        }
        let mut best = Rational::zero();
        for (i, v) in values.iter().enumerate() {
            if mask & (1 << i) != 0 && v > &best {
                best = v.clone();
            }
        }
        h.set_value(mask, best);
    }
    h
}

/// Item (2) of Lemma 3.7 / Theorem C.3: a normal polymatroid `h′` with
/// `h′ ≤ h`, `h′(V) = h(V)` and `h′({i}) = h({i})` for every `i`.
///
/// The input must be a polymatroid; the output is guaranteed (and, under
/// `debug_assertions`, checked) to be a normal polymatroid with the three
/// listed properties.
pub fn normalize(h: &SetFunction) -> SetFunction {
    let result = normalize_inner(h);
    #[cfg(debug_assertions)]
    {
        use crate::shannon::is_polymatroid;
        use crate::stepfn::is_normal;
        debug_assert!(
            is_polymatroid(&result),
            "normalization must return a polymatroid"
        );
        debug_assert!(
            is_normal(&result),
            "normalization must return a normal function"
        );
        debug_assert!(
            result.dominated_by(h),
            "normalization must not increase any value"
        );
        debug_assert_eq!(result.value(h.full_mask()), h.value(h.full_mask()));
    }
    result
}

fn normalize_inner(h: &SetFunction) -> SetFunction {
    let n = h.num_vars();
    if n <= 1 {
        // With a single variable every polymatroid is h({1}) · h_∅, hence normal.
        return h.clone();
    }
    let vars = h.vars().to_vec();
    let last = n - 1;
    let last_bit: Mask = 1 << last;
    let hn = h.value(last_bit).clone();

    // The conditional polymatroid on L2 (subsets containing the last variable),
    // identified with the lattice over the first n-1 variables:
    //     h2(S) = h(S ∪ {n}) − h({n}).
    let sub_vars: Vec<String> = vars[..last].to_vec();
    let mut h2 = SetFunction::zero(sub_vars.clone());
    for s in all_masks(last) {
        h2.set_value(s, h.value(s | last_bit) - &hn);
    }
    let h2_normal = normalize_inner(&h2);

    // The L1 part: h1(X) = I(X ; {n}) is handled by the max construction on the
    // singleton mutual informations I({i} ; {n}).
    let singleton_mi: Vec<Rational> = (0..last)
        .map(|i| h.mutual_information(1 << i, last_bit, 0))
        .collect();
    let h1_normal = max_construction(sub_vars, &singleton_mi);

    // Combine (Eqs. 42 and 43):
    //   X ∌ n : h′(X) = h1′(X) + h2′(X)
    //   X ∋ n : h′(X) = h({n}) + h2′(X ∖ {n})
    let mut result = SetFunction::zero(vars);
    for mask in all_masks(n) {
        if mask == 0 {
            continue;
        }
        let value = if mask & last_bit == 0 {
            h1_normal.value(mask) + h2_normal.value(mask)
        } else {
            let rest = mask & !last_bit;
            &hn + h2_normal.value(rest)
        };
        result.set_value(mask, value);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shannon::{is_modular, is_polymatroid};
    use crate::stepfn::is_normal;
    use bqc_arith::{int, ratio};

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn parity() -> SetFunction {
        SetFunction::from_values(
            names(&["X", "Y", "Z"]),
            vec![
                int(0),
                int(1),
                int(1),
                int(2),
                int(1),
                int(2),
                int(2),
                int(2),
            ],
        )
    }

    fn check_lemma_3_7_2(h: &SetFunction) {
        let normalized = normalize(h);
        assert!(is_polymatroid(&normalized));
        assert!(is_normal(&normalized));
        assert!(normalized.dominated_by(h));
        assert_eq!(normalized.value(h.full_mask()), h.value(h.full_mask()));
        for i in 0..h.num_vars() {
            assert_eq!(
                normalized.value(1 << i),
                h.value(1 << i),
                "singleton {i} must be preserved"
            );
        }
    }

    #[test]
    fn modularize_parity() {
        let h = parity();
        let modular = modularize(&h);
        assert!(is_modular(&modular));
        assert!(modular.dominated_by(&h));
        assert_eq!(modular.value(h.full_mask()), h.value(h.full_mask()));
        // Item (1) does not preserve singletons in general: here h'(Z) = 0 < 1.
        assert_eq!(modular.value_of(["Z"]), &int(0));
    }

    #[test]
    fn normalize_parity_matches_example_c4() {
        // Example C.4 normalizes the parity function; the result preserves the
        // singletons and the top, and is normal.
        let h = parity();
        check_lemma_3_7_2(&h);
        let normalized = normalize(&h);
        // The paper's figure gives h'(12) = 1 (the bag containing X,Y drops to 1).
        // Our recursion eliminates the last variable (Z), producing a symmetric
        // variant; the defining properties are what matters, but we also pin the
        // concrete values to guard against regressions.
        assert_eq!(normalized.value_of(["X", "Y", "Z"]), &int(2));
        assert_eq!(normalized.value_of(["X"]), &int(1));
        assert_eq!(normalized.value_of(["Y"]), &int(1));
        assert_eq!(normalized.value_of(["Z"]), &int(1));
    }

    #[test]
    fn normalize_already_normal_functions() {
        // Step functions and modular functions stay within the bounds.
        let step = crate::stepfn::step_function(names(&["A", "B", "C"]), 0b010);
        check_lemma_3_7_2(&step);
        let modular = crate::stepfn::modular_function(
            names(&["A", "B", "C"]),
            &[int(1), ratio(3, 2), int(2)],
        );
        check_lemma_3_7_2(&modular);
    }

    #[test]
    fn normalize_two_variable_polymatroids() {
        // On two variables every polymatroid is already normal, and the
        // construction must preserve it exactly (it preserves singletons and the
        // top, which determine everything on n = 2).
        let h = SetFunction::from_values(names(&["X", "Y"]), vec![int(0), int(2), int(3), int(4)]);
        check_lemma_3_7_2(&h);
        let normalized = normalize(&h);
        assert_eq!(normalized, h);
    }

    #[test]
    fn normalize_four_variable_polymatroid() {
        // The uniform matroid of rank 2 on 4 variables: h(X) = min(|X|, 2).
        let vars = names(&["A", "B", "C", "D"]);
        let mut h = SetFunction::zero(vars);
        for mask in all_masks(4) {
            let size = mask.count_ones().min(2) as i64;
            h.set_value(mask, int(size));
        }
        assert!(is_polymatroid(&h));
        check_lemma_3_7_2(&h);
    }

    #[test]
    fn max_construction_is_normal_polymatroid() {
        // Lemma C.2 with a mix of values, including zero and equal entries.
        let h = max_construction(names(&["A", "B", "C"]), &[int(0), int(2), int(2)]);
        assert!(is_polymatroid(&h));
        assert!(is_normal(&h));
        assert_eq!(h.value_of(["A"]), &int(0));
        assert_eq!(h.value_of(["A", "B"]), &int(2));
        assert_eq!(h.value_of(["B", "C"]), &int(2));
    }

    #[test]
    fn normalize_preserves_fractional_values() {
        let h = SetFunction::from_values(
            names(&["X", "Y", "Z"]),
            vec![
                int(0),
                ratio(1, 2),
                ratio(1, 2),
                ratio(3, 4),
                ratio(1, 2),
                ratio(3, 4),
                ratio(3, 4),
                ratio(3, 4),
            ],
        );
        assert!(is_polymatroid(&h));
        check_lemma_3_7_2(&h);
    }
}
