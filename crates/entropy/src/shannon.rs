//! The Shannon (polymatroid) cone `Γ_n` and its elemental inequalities.
//!
//! A function `h : 2^V → ℝ_+` with `h(∅) = 0` is a *polymatroid* when it is
//! monotone and submodular (Eq. 5).  The set `Γ_n` of polymatroids is a
//! polyhedral cone, generated (in its dual description) by the *elemental*
//! Shannon inequalities:
//!
//! * monotonicity: `h(V) − h(V ∖ {i}) ≥ 0` for every variable `i`;
//! * submodularity: `h(X ∪ {i}) + h(X ∪ {j}) − h(X ∪ {i,j}) − h(X) ≥ 0`
//!   for all `i < j` and all `X ⊆ V ∖ {i, j}`.
//!
//! Every Shannon inequality is a non-negative combination of these, which is
//! exactly what the LP-based validity checker in `bqc-iip` relies on.

use crate::setfn::{all_masks, Mask, SetFunction};
use bqc_arith::Rational;

/// A single linear constraint `Σ coeff·h(mask) ≥ 0` in sparse form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElementalInequality {
    /// Sparse list of `(subset mask, coefficient)` pairs.
    pub terms: Vec<(Mask, Rational)>,
    /// Human-readable description.
    pub label: String,
}

impl ElementalInequality {
    /// Evaluates the constraint's left-hand side on a set function.
    pub fn evaluate(&self, h: &SetFunction) -> Rational {
        let mut acc = Rational::zero();
        for (mask, coeff) in &self.terms {
            acc += coeff * h.value(*mask);
        }
        acc
    }
}

/// Generates the elemental Shannon inequalities for an `n`-variable universe,
/// with labels and exact coefficients materialized.
///
/// The count is `n + C(n,2)·2^{n−2}` for `n ≥ 2` (plus just the `n`
/// monotonicity constraints for `n ≤ 1`).  Hot paths that only need the
/// constraint *structure* should iterate the allocation-free
/// [`crate::separator::elemental_ids`] instead — this function is a thin
/// materialization of that enumeration and shares its canonical order.
pub fn elemental_inequalities(n: usize) -> Vec<ElementalInequality> {
    crate::separator::elemental_ids(n)
        .map(|id| {
            let (terms, len) = id.terms(n);
            ElementalInequality {
                terms: terms[..len]
                    .iter()
                    .map(|(mask, coeff)| (*mask, Rational::from_integer(*coeff)))
                    .collect(),
                label: id.label(),
            }
        })
        .collect()
}

/// Expected number of elemental inequalities for `n` variables.
pub fn elemental_count(n: usize) -> usize {
    if n < 2 {
        n
    } else {
        n + n * (n - 1) / 2 * (1 << (n - 2))
    }
}

/// Checks whether an exact set function is a polymatroid (monotone,
/// submodular, `h(∅) = 0`, non-negative).
pub fn is_polymatroid(h: &SetFunction) -> bool {
    if !h.value(0).is_zero() {
        return false;
    }
    // Non-negativity and monotonicity follow from the elemental inequalities
    // plus h(∅) = 0, but checking monotonicity for every pair (X, X∪{i}) keeps
    // the predicate meaningful on its own.
    let n = h.num_vars();
    for x in all_masks(n) {
        for i in 0..n {
            if x & (1 << i) == 0 && h.value(x | (1 << i)) < h.value(x) {
                return false;
            }
        }
    }
    elemental_inequalities(n)
        .iter()
        .all(|c| !c.evaluate(h).is_negative())
}

/// Checks whether a set function is modular:
/// `h(X ∪ Y) + h(X ∩ Y) = h(X) + h(Y)` for all `X, Y` — equivalently
/// `h(X) = Σ_{i ∈ X} h({i})`.
pub fn is_modular(h: &SetFunction) -> bool {
    let n = h.num_vars();
    for x in all_masks(n) {
        let mut sum = Rational::zero();
        for i in 0..n {
            if x & (1 << i) != 0 {
                sum += h.value(1 << i);
            }
        }
        if &sum != h.value(x) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::{int, ratio};

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn parity() -> SetFunction {
        SetFunction::from_values(
            names(&["X", "Y", "Z"]),
            vec![
                int(0),
                int(1),
                int(1),
                int(2),
                int(1),
                int(2),
                int(2),
                int(2),
            ],
        )
    }

    #[test]
    fn constraint_counts() {
        assert_eq!(elemental_inequalities(1).len(), elemental_count(1));
        assert_eq!(elemental_inequalities(2).len(), elemental_count(2));
        assert_eq!(elemental_inequalities(3).len(), elemental_count(3));
        assert_eq!(elemental_inequalities(4).len(), elemental_count(4));
        assert_eq!(elemental_count(3), 3 + 3 * 2);
        assert_eq!(elemental_count(4), 4 + 6 * 4);
    }

    #[test]
    fn parity_is_a_polymatroid() {
        assert!(is_polymatroid(&parity()));
        assert!(!is_modular(&parity()));
    }

    #[test]
    fn independent_bits_are_modular() {
        let h = SetFunction::from_values(names(&["X", "Y"]), vec![int(0), int(1), int(2), int(3)]);
        assert!(is_polymatroid(&h));
        assert!(is_modular(&h));
    }

    #[test]
    fn violations_are_detected() {
        // Non-monotone.
        let h = SetFunction::from_values(names(&["X", "Y"]), vec![int(0), int(2), int(1), int(1)]);
        assert!(!is_polymatroid(&h));
        // Supermodular (violates submodularity): h(X)=h(Y)=1, h(XY)=3.
        let h = SetFunction::from_values(names(&["X", "Y"]), vec![int(0), int(1), int(1), int(3)]);
        assert!(!is_polymatroid(&h));
        assert!(!is_modular(&h));
    }

    #[test]
    fn elemental_evaluation() {
        let h = parity();
        for c in elemental_inequalities(3) {
            assert!(
                !c.evaluate(&h).is_negative(),
                "constraint {} violated",
                c.label
            );
        }
    }

    #[test]
    fn fractional_polymatroid() {
        // h(X) = h(Y) = 1/2, h(XY) = 3/4: submodular and monotone.
        let h = SetFunction::from_values(
            names(&["X", "Y"]),
            vec![int(0), ratio(1, 2), ratio(1, 2), ratio(3, 4)],
        );
        assert!(is_polymatroid(&h));
        assert!(!is_modular(&h));
    }
}
