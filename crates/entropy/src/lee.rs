//! Lee's information-theoretic characterizations of database constraints.
//!
//! Section 6 of the paper credits Tony Lee \[22\] with the first use of the
//! expression `E_T`: for the entropy `h` of the uniform distribution on a
//! relation `P`,
//!
//! * a functional dependency `X → Y` holds on `P` iff `h(Y | X) = 0`;
//! * a multivalued dependency `X ↠ Y` holds iff `I(Y ; V∖(X∪Y) | X) = 0`;
//! * `P` decomposes losslessly along an acyclic join tree `T` iff
//!   `E_T(h) = h(V)`.
//!
//! These are implemented here both on empirical entropies (any relation) and,
//! where exactness matters, directly on the relation, and they serve as an
//! independent cross-check of the `E_T` machinery in `bqc-core`.

use crate::relation::relation_entropy;
use crate::setfn::RealSetFunction;
use bqc_relational::VRelation;
use std::collections::BTreeSet;

/// Numerical tolerance for zero tests on empirical entropies (which are sums
/// of `p·log p` terms and carry floating-point error).
const EPSILON: f64 = 1e-9;

/// Checks the functional dependency `X → Y` on a relation, information
/// theoretically: `h(Y | X) = 0`.
pub fn functional_dependency_holds(relation: &VRelation, x: &[String], y: &[String]) -> bool {
    if relation.is_empty() {
        return true;
    }
    let h = relation_entropy(relation);
    conditional(&h, y, x).abs() < EPSILON
}

/// Checks the multivalued dependency `X ↠ Y`:
/// `I(Y ; rest | X) = 0` where `rest = columns ∖ (X ∪ Y)`.
pub fn multivalued_dependency_holds(relation: &VRelation, x: &[String], y: &[String]) -> bool {
    if relation.is_empty() {
        return true;
    }
    let h = relation_entropy(relation);
    let xy: BTreeSet<&String> = x.iter().chain(y.iter()).collect();
    let rest: Vec<String> = relation
        .columns()
        .iter()
        .filter(|c| !xy.contains(c))
        .cloned()
        .collect();
    // I(Y ; rest | X) = h(XY) + h(X rest) - h(X Y rest) - h(X).
    fn union(a: &[String], b: &[String]) -> Vec<String> {
        let mut out = a.to_vec();
        for s in b {
            if !out.contains(s) {
                out.push(s.clone());
            }
        }
        out
    }
    let xy = union(x, y);
    let xrest = union(x, &rest);
    let xyrest = union(&xy, &rest);
    let information = h.value_of(xy.iter().map(|s| s.as_str()))
        + h.value_of(xrest.iter().map(|s| s.as_str()))
        - h.value_of(xyrest.iter().map(|s| s.as_str()))
        - h.value_of(x.iter().map(|s| s.as_str()));
    information.abs() < EPSILON
}

/// Lee's lossless-join criterion: the relation decomposes along the given
/// bags (with the tree implied by `E_T`'s node/edge form over the supplied
/// separators) iff `Σ h(bag) − Σ h(separator) = h(all columns)`.
///
/// The caller supplies the bags and the list of separators of a join tree over
/// them (for a chain `B_1 − B_2 − … − B_m`, the separators are the pairwise
/// intersections of adjacent bags).
pub fn lossless_join_holds(
    relation: &VRelation,
    bags: &[Vec<String>],
    separators: &[Vec<String>],
) -> bool {
    if relation.is_empty() {
        return true;
    }
    let h = relation_entropy(relation);
    let mut et = 0.0;
    for bag in bags {
        et += h.value_of(bag.iter().map(|s| s.as_str()));
    }
    for sep in separators {
        et -= h.value_of(sep.iter().map(|s| s.as_str()));
    }
    let top = h.value_of(relation.columns().iter().map(|s| s.as_str()));
    (et - top).abs() < EPSILON
}

fn conditional(h: &RealSetFunction, y: &[String], x: &[String]) -> f64 {
    let mut xy: Vec<&str> = x.iter().map(|s| s.as_str()).collect();
    for s in y {
        if !xy.contains(&s.as_str()) {
            xy.push(s.as_str());
        }
    }
    h.value_of(xy) - h.value_of(x.iter().map(|s| s.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_relational::Value;

    fn cols(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn employee_relation() -> VRelation {
        // emp -> dept is an FD; dept ->> proj is an MVD (each dept's projects
        // are independent of the employee within the dept).
        VRelation::from_rows(
            cols(&["emp", "dept", "proj"]),
            vec![
                vec![Value::text("ann"), Value::text("db"), Value::text("p1")],
                vec![Value::text("ann"), Value::text("db"), Value::text("p2")],
                vec![Value::text("bob"), Value::text("db"), Value::text("p1")],
                vec![Value::text("bob"), Value::text("db"), Value::text("p2")],
                vec![Value::text("cid"), Value::text("ml"), Value::text("p3")],
            ],
        )
    }

    #[test]
    fn functional_dependencies() {
        let rel = employee_relation();
        assert!(functional_dependency_holds(
            &rel,
            &cols(&["emp"]),
            &cols(&["dept"])
        ));
        assert!(!functional_dependency_holds(
            &rel,
            &cols(&["dept"]),
            &cols(&["emp"])
        ));
        assert!(!functional_dependency_holds(
            &rel,
            &cols(&["emp"]),
            &cols(&["proj"])
        ));
        // Trivial FDs.
        assert!(functional_dependency_holds(
            &rel,
            &cols(&["emp", "proj"]),
            &cols(&["emp"])
        ));
        assert!(functional_dependency_holds(
            &VRelation::new(cols(&["a"])),
            &cols(&["a"]),
            &cols(&["a"])
        ));
    }

    #[test]
    fn multivalued_dependencies() {
        let rel = employee_relation();
        // dept ->> proj holds (and equivalently dept ->> emp).
        assert!(multivalued_dependency_holds(
            &rel,
            &cols(&["dept"]),
            &cols(&["proj"])
        ));
        assert!(multivalued_dependency_holds(
            &rel,
            &cols(&["dept"]),
            &cols(&["emp"])
        ));
        // emp ->> proj does not hold... actually within this data every employee's
        // projects are exactly their department's projects, so it does; use a
        // relation where it genuinely fails.
        let skewed = VRelation::from_rows(
            cols(&["x", "y", "z"]),
            vec![
                vec![Value::int(0), Value::int(0), Value::int(0)],
                vec![Value::int(0), Value::int(1), Value::int(1)],
            ],
        );
        assert!(!multivalued_dependency_holds(
            &skewed,
            &cols(&["x"]),
            &cols(&["y"])
        ));
        // Every FD is in particular an MVD.
        assert!(multivalued_dependency_holds(
            &rel,
            &cols(&["emp"]),
            &cols(&["dept"])
        ));
    }

    #[test]
    fn lossless_join() {
        let rel = employee_relation();
        // Decomposition into (emp, dept) and (dept, proj) is lossless.
        assert!(lossless_join_holds(
            &rel,
            &[cols(&["emp", "dept"]), cols(&["dept", "proj"])],
            &[cols(&["dept"])],
        ));
        // Decomposition into (emp, dept) and (emp... proj) without the dept join
        // column is lossy for the skewed relation below.
        let skewed = VRelation::from_rows(
            cols(&["x", "y", "z"]),
            vec![
                vec![Value::int(0), Value::int(0), Value::int(0)],
                vec![Value::int(0), Value::int(1), Value::int(1)],
                vec![Value::int(1), Value::int(0), Value::int(1)],
            ],
        );
        assert!(!lossless_join_holds(
            &skewed,
            &[cols(&["x", "y"]), cols(&["y", "z"])],
            &[cols(&["y"])],
        ));
    }

    #[test]
    fn parity_relation_has_no_nontrivial_fds_or_lossless_binary_joins() {
        let rel = crate::relation::parity_relation(["X", "Y", "Z"]);
        assert!(!functional_dependency_holds(
            &rel,
            &cols(&["X"]),
            &cols(&["Y"])
        ));
        // But any two columns determine the third.
        assert!(functional_dependency_holds(
            &rel,
            &cols(&["X", "Y"]),
            &cols(&["Z"])
        ));
        // The binary decomposition {X,Y}, {Y,Z} is lossy (E_T = 4 > 2 = h(V)).
        assert!(!lossless_join_holds(
            &rel,
            &[cols(&["X", "Y"]), cols(&["Y", "Z"])],
            &[cols(&["Y"])],
        ));
    }
}
