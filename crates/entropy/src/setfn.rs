//! Exact set functions `h : 2^V → ℚ` over a named variable universe.
//!
//! Entropic functions, polymatroids, modular and normal functions are all set
//! functions over the subsets of a variable set `V = {X_1, …, X_n}`
//! (Section 2.3).  [`SetFunction`] stores one exact rational per subset,
//! indexed by bitmask, together with the variable names, and provides the
//! derived quantities used throughout the paper: conditional entropy
//! `h(Y|X) = h(XY) − h(X)`, conditional mutual information, and the Möbius
//! inverse `g` of Eq. (33) (equivalently, Yeung's I-measure up to sign).

use bqc_arith::Rational;
use std::collections::BTreeSet;
use std::fmt;

/// A subset of the variable universe, as a bitmask over the variable indices.
pub type Mask = u32;

/// Iterates over all `2^n` subset masks of an `n`-element universe.
pub fn all_masks(n: usize) -> impl Iterator<Item = Mask> {
    assert!(
        n < 31,
        "variable universes beyond 30 variables are not supported"
    );
    0..(1u32 << n)
}

/// Number of elements in a mask.
pub fn mask_len(mask: Mask) -> usize {
    mask.count_ones() as usize
}

/// `true` iff `a ⊆ b`.
pub fn mask_subset(a: Mask, b: Mask) -> bool {
    a & !b == 0
}

/// An exact set function over named variables with `h(∅) = 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetFunction {
    vars: Vec<String>,
    values: Vec<Rational>,
}

impl SetFunction {
    /// Creates the all-zero set function over the given variables.
    ///
    /// # Panics
    ///
    /// Panics if variable names repeat or if there are more than 30 variables.
    pub fn zero(vars: Vec<String>) -> SetFunction {
        let distinct: BTreeSet<&String> = vars.iter().collect();
        assert_eq!(distinct.len(), vars.len(), "duplicate variable names");
        assert!(vars.len() < 31, "too many variables");
        let values = vec![Rational::zero(); 1 << vars.len()];
        SetFunction { vars, values }
    }

    /// Creates a set function from explicit per-mask values (`values[mask]`).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 2^n` or `values[0] != 0`.
    pub fn from_values(vars: Vec<String>, values: Vec<Rational>) -> SetFunction {
        assert_eq!(values.len(), 1 << vars.len(), "need one value per subset");
        assert!(values[0].is_zero(), "h(∅) must be 0");
        let mut f = SetFunction::zero(vars);
        f.values = values;
        f
    }

    /// The variable names, in index order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The mask containing every variable.
    pub fn full_mask(&self) -> Mask {
        ((1u64 << self.vars.len()) - 1) as Mask
    }

    /// The bit index of a variable name.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn index_of(&self, name: &str) -> usize {
        self.vars
            .iter()
            .position(|v| v == name)
            .unwrap_or_else(|| panic!("unknown variable {name}"))
    }

    /// Converts a set of names into a mask.
    pub fn mask_of<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> Mask {
        let mut mask = 0;
        for name in names {
            mask |= 1 << self.index_of(name);
        }
        mask
    }

    /// Converts a mask back into the set of names.
    pub fn names_of(&self, mask: Mask) -> BTreeSet<String> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// The value `h(S)` for a mask `S`.
    pub fn value(&self, mask: Mask) -> &Rational {
        &self.values[mask as usize]
    }

    /// Sets `h(S)`.
    ///
    /// # Panics
    ///
    /// Panics when setting `h(∅)` to a non-zero value.
    pub fn set_value(&mut self, mask: Mask, value: Rational) {
        if mask == 0 {
            assert!(value.is_zero(), "h(∅) must remain 0");
        }
        self.values[mask as usize] = value;
    }

    /// The value `h(S)` for a set of names.
    pub fn value_of<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> &Rational {
        self.value(self.mask_of(names))
    }

    /// Conditional entropy `h(Y | X) = h(X ∪ Y) − h(X)`.
    pub fn conditional(&self, y: Mask, x: Mask) -> Rational {
        self.value(x | y) - self.value(x)
    }

    /// Conditional mutual information
    /// `I(A ; B | X) = h(A ∪ X) + h(B ∪ X) − h(A ∪ B ∪ X) − h(X)`.
    pub fn mutual_information(&self, a: Mask, b: Mask, x: Mask) -> Rational {
        self.value(a | x) + self.value(b | x) - self.value(a | b | x) - self.value(x)
    }

    /// Pointwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the variable universes differ.
    pub fn add(&self, other: &SetFunction) -> SetFunction {
        assert_eq!(self.vars, other.vars, "mismatched variable universes");
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a + b)
            .collect();
        SetFunction {
            vars: self.vars.clone(),
            values,
        }
    }

    /// Pointwise scaling by a non-negative rational.
    pub fn scale(&self, factor: &Rational) -> SetFunction {
        let values = self.values.iter().map(|v| v * factor).collect();
        SetFunction {
            vars: self.vars.clone(),
            values,
        }
    }

    /// Pointwise comparison: `true` iff `self(S) ≤ other(S)` for every `S`.
    pub fn dominated_by(&self, other: &SetFunction) -> bool {
        assert_eq!(self.vars, other.vars, "mismatched variable universes");
        self.values.iter().zip(&other.values).all(|(a, b)| a <= b)
    }

    /// The Möbius inverse `g` of Eq. (33):
    /// `g(X) = Σ_{Y ⊇ X} (−1)^{|Y − X|} h(Y)`, satisfying
    /// `h(X) = Σ_{Y ⊇ X} g(Y)`.
    pub fn mobius_inverse(&self) -> Vec<Rational> {
        let n = self.vars.len();
        let full = self.full_mask();
        let mut g = vec![Rational::zero(); 1 << n];
        for x in all_masks(n) {
            let complement = full & !x;
            // Iterate over supersets Y ⊇ X by adding subsets of the complement.
            let mut acc = Rational::zero();
            let mut extra: Mask = 0;
            loop {
                let y = x | extra;
                let term = self.value(y);
                if mask_len(extra) % 2 == 0 {
                    acc += term;
                } else {
                    acc -= term;
                }
                if extra == complement {
                    break;
                }
                extra = (extra.wrapping_sub(complement)) & complement;
            }
            g[x as usize] = acc;
        }
        g
    }

    /// Reconstructs a set function from its Möbius inverse
    /// (`h(X) = Σ_{Y ⊇ X} g(Y)`).
    pub fn from_mobius(vars: Vec<String>, g: &[Rational]) -> SetFunction {
        let n = vars.len();
        assert_eq!(g.len(), 1 << n, "need one Möbius coefficient per subset");
        let full: Mask = ((1u64 << n) - 1) as Mask;
        let mut values = vec![Rational::zero(); 1 << n];
        for x in all_masks(n) {
            let complement = full & !x;
            let mut acc = Rational::zero();
            let mut extra: Mask = 0;
            loop {
                acc += &g[(x | extra) as usize];
                if extra == complement {
                    break;
                }
                extra = (extra.wrapping_sub(complement)) & complement;
            }
            values[x as usize] = acc;
        }
        SetFunction::from_values(vars, values)
    }

    /// Restricts the function to a sub-universe given by `keep` (a mask),
    /// producing a set function over the retained variables.
    pub fn restrict(&self, keep: Mask) -> SetFunction {
        let kept: Vec<usize> = (0..self.vars.len())
            .filter(|i| keep & (1 << i) != 0)
            .collect();
        let vars: Vec<String> = kept.iter().map(|&i| self.vars[i].clone()).collect();
        let mut result = SetFunction::zero(vars);
        for sub in all_masks(kept.len()) {
            let mut original: Mask = 0;
            for (new_bit, &old_bit) in kept.iter().enumerate() {
                if sub & (1 << new_bit) != 0 {
                    original |= 1 << old_bit;
                }
            }
            result.set_value(sub, self.value(original).clone());
        }
        result
    }

    /// Approximate f64 view (for reporting).
    pub fn to_f64(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.to_f64()).collect()
    }
}

impl fmt::Display for SetFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for mask in all_masks(self.vars.len()) {
            if mask == 0 {
                continue;
            }
            let names: Vec<String> = self.names_of(mask).into_iter().collect();
            writeln!(f, "h({}) = {}", names.join(""), self.value(mask))?;
        }
        Ok(())
    }
}

/// A floating-point set function, used for empirical entropies of relations
/// (whose values are logarithms and generally irrational).
#[derive(Clone, Debug, PartialEq)]
pub struct RealSetFunction {
    vars: Vec<String>,
    values: Vec<f64>,
}

impl RealSetFunction {
    /// Creates a real set function from per-mask values.
    pub fn from_values(vars: Vec<String>, values: Vec<f64>) -> RealSetFunction {
        assert_eq!(values.len(), 1 << vars.len(), "need one value per subset");
        RealSetFunction { vars, values }
    }

    /// The variable names.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Value at a mask.
    pub fn value(&self, mask: Mask) -> f64 {
        self.values[mask as usize]
    }

    /// Mask from names.
    pub fn mask_of<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> Mask {
        let mut mask = 0;
        for name in names {
            let index = self
                .vars
                .iter()
                .position(|v| v == name)
                .unwrap_or_else(|| panic!("unknown variable {name}"));
            mask |= 1 << index;
        }
        mask
    }

    /// Value by names.
    pub fn value_of<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> f64 {
        self.value(self.mask_of(names))
    }

    /// Conditional entropy `h(Y|X)`.
    pub fn conditional(&self, y: Mask, x: Mask) -> f64 {
        self.value(x | y) - self.value(x)
    }

    /// Checks the polymatroid axioms up to a numerical tolerance.
    pub fn is_approx_polymatroid(&self, tolerance: f64) -> bool {
        let n = self.vars.len();
        let full = ((1u64 << n) - 1) as Mask;
        if self.values[0].abs() > tolerance {
            return false;
        }
        for i in 0..n {
            if self.value(full) - self.value(full & !(1 << i)) < -tolerance {
                return false;
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                for x in all_masks(n) {
                    if x & (1 << i) != 0 || x & (1 << j) != 0 {
                        continue;
                    }
                    let lhs = self.value(x | (1 << i)) + self.value(x | (1 << j));
                    let rhs = self.value(x | (1 << i) | (1 << j)) + self.value(x);
                    if lhs - rhs < -tolerance {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::int;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mask_helpers() {
        assert_eq!(all_masks(3).count(), 8);
        assert_eq!(mask_len(0b101), 2);
        assert!(mask_subset(0b001, 0b011));
        assert!(!mask_subset(0b100, 0b011));
    }

    #[test]
    fn construction_and_lookup() {
        let mut h = SetFunction::zero(names(&["X", "Y"]));
        assert_eq!(h.num_vars(), 2);
        assert_eq!(h.full_mask(), 0b11);
        h.set_value(0b01, int(1));
        h.set_value(0b10, int(1));
        h.set_value(0b11, int(2));
        assert_eq!(h.value_of(["X"]), &int(1));
        assert_eq!(h.value_of(["X", "Y"]), &int(2));
        assert_eq!(h.names_of(0b11).len(), 2);
        assert_eq!(h.mask_of(["Y"]), 0b10);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn unknown_variable_panics() {
        let h = SetFunction::zero(names(&["X"]));
        h.value_of(["Z"]);
    }

    #[test]
    fn conditional_and_mutual_information() {
        // Two independent fair bits: h(X)=h(Y)=1, h(XY)=2.
        let h = SetFunction::from_values(names(&["X", "Y"]), vec![int(0), int(1), int(1), int(2)]);
        assert_eq!(h.conditional(0b10, 0b01), int(1));
        assert_eq!(h.mutual_information(0b01, 0b10, 0), int(0));
        // Perfectly correlated bits: h(X)=h(Y)=h(XY)=1.
        let h = SetFunction::from_values(names(&["X", "Y"]), vec![int(0), int(1), int(1), int(1)]);
        assert_eq!(h.conditional(0b10, 0b01), int(0));
        assert_eq!(h.mutual_information(0b01, 0b10, 0), int(1));
    }

    #[test]
    fn add_scale_dominate() {
        let a = SetFunction::from_values(names(&["X"]), vec![int(0), int(2)]);
        let b = SetFunction::from_values(names(&["X"]), vec![int(0), int(3)]);
        assert_eq!(a.add(&b).value(1), &int(5));
        assert_eq!(a.scale(&bqc_arith::ratio(1, 2)).value(1), &int(1));
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    #[test]
    fn mobius_inverse_of_parity_matches_paper() {
        // Appendix B: the parity function has g(∅)=1, g(X)=g(Y)=g(Z)=−1,
        // g(pairs)=0, g(XYZ)=2.
        let h = SetFunction::from_values(
            names(&["X", "Y", "Z"]),
            vec![
                int(0),
                int(1),
                int(1),
                int(2),
                int(1),
                int(2),
                int(2),
                int(2),
            ],
        );
        let g = h.mobius_inverse();
        assert_eq!(g[0], int(1));
        assert_eq!(g[0b001], int(-1));
        assert_eq!(g[0b010], int(-1));
        assert_eq!(g[0b100], int(-1));
        assert_eq!(g[0b011], int(0));
        assert_eq!(g[0b101], int(0));
        assert_eq!(g[0b110], int(0));
        assert_eq!(g[0b111], int(2));
        // Σ_Y g(Y) = h(∅) = 0.
        let total: Rational = g.iter().sum();
        assert_eq!(total, int(0));
    }

    #[test]
    fn mobius_roundtrip() {
        let h = SetFunction::from_values(
            names(&["A", "B", "C"]),
            vec![
                int(0),
                int(3),
                int(2),
                int(4),
                int(5),
                int(7),
                int(6),
                int(8),
            ],
        );
        let g = h.mobius_inverse();
        let back = SetFunction::from_mobius(names(&["A", "B", "C"]), &g);
        assert_eq!(back, h);
    }

    #[test]
    fn restriction() {
        let h = SetFunction::from_values(
            names(&["X", "Y", "Z"]),
            vec![
                int(0),
                int(1),
                int(1),
                int(2),
                int(1),
                int(2),
                int(2),
                int(2),
            ],
        );
        let restricted = h.restrict(0b011); // keep X, Y
        assert_eq!(restricted.vars(), &["X", "Y"]);
        assert_eq!(restricted.value_of(["X", "Y"]), &int(2));
        assert_eq!(restricted.value_of(["Y"]), &int(1));
    }

    #[test]
    fn real_set_function_checks() {
        // Entropy of two i.i.d. fair bits.
        let h = RealSetFunction::from_values(names(&["X", "Y"]), vec![0.0, 1.0, 1.0, 2.0]);
        assert!(h.is_approx_polymatroid(1e-9));
        assert_eq!(h.value_of(["X", "Y"]), 2.0);
        assert_eq!(h.conditional(0b10, 0b01), 1.0);
        // A non-monotone function is rejected.
        let bad = RealSetFunction::from_values(names(&["X", "Y"]), vec![0.0, 1.0, 1.0, 0.5]);
        assert!(!bad.is_approx_polymatroid(1e-9));
    }

    #[test]
    fn display_contains_values() {
        let h = SetFunction::from_values(names(&["X", "Y"]), vec![int(0), int(1), int(1), int(2)]);
        let text = h.to_string();
        assert!(text.contains("h(XY) = 2"));
    }
}
