//! Counters and fixed-log2-bucket histograms behind relaxed atomics.
//!
//! Metrics register themselves in a process-wide registry on first use and
//! live for the rest of the process; handles are cheap clones around an
//! `Arc<AtomicU64>`.  Hot call sites use [`LazyCounter`] / [`LazyHistogram`]
//! statics, which pay the registry lookup once and a relaxed `fetch_add`
//! thereafter.  Names follow `bqc_<crate>_<thing>_total` for counters;
//! per-shard (or otherwise labelled) series bake the label into the name
//! Prometheus-style, e.g. `bqc_engine_cache_hits_total{shard="3"}`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket `k`
/// (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k)`.
pub const BUCKETS: usize = 65;

/// The bucket a value falls into: `0 → 0`, `1 → 1`, `[2,4) → 2`, `[4,8) → 3`,
/// …, `[2^63, 2^64) → 64`.  Deterministic by construction so tests (and the
/// exposition golden files) can assert exact edges.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper edge of bucket `k` — the `le` label the Prometheus
/// exposition prints: `0, 1, 3, 7, 15, …, 2^k - 1, …, u64::MAX`.
pub fn bucket_upper_edge(k: usize) -> u64 {
    match k {
        0 => 0,
        1..=63 => (1u64 << k) - 1,
        _ => u64::MAX,
    }
}

/// A monotonically increasing counter.  Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`; a relaxed load + untaken branch when metrics are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A histogram over `u64` observations with the fixed log2 buckets of
/// [`bucket_index`].  Cloning shares the underlying cells.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        if crate::enabled() {
            self.core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.core.count.fetch_add(1, Ordering::Relaxed);
            self.core.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.core.count.load(Ordering::Relaxed),
            sum: self.core.sum.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state, as captured by [`snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts, [`BUCKETS`] entries.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// Looks up (registering on first use) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = registry().counters.lock().unwrap();
    if let Some(existing) = map.get(name) {
        return existing.clone();
    }
    let fresh = Counter {
        cell: Arc::new(AtomicU64::new(0)),
    };
    map.insert(name.to_owned(), fresh.clone());
    fresh
}

/// Looks up (registering on first use) the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut map = registry().histograms.lock().unwrap();
    if let Some(existing) = map.get(name) {
        return existing.clone();
    }
    let fresh = Histogram {
        core: Arc::new(HistogramCore::new()),
    };
    map.insert(name.to_owned(), fresh.clone());
    fresh
}

/// A counter for `static` call sites: `const`-constructible, resolves its
/// registry handle on first increment.
///
/// ```
/// static PIVOTS: bqc_obs::LazyCounter = bqc_obs::LazyCounter::new("demo_pivots_total");
/// PIVOTS.inc();
/// assert_eq!(PIVOTS.get(), 1);
/// ```
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    /// Declares a counter named `name` without registering it yet.
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn handle(&self) -> &Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.handle().add(n);
        }
    }

    /// Current value (registers the counter if it never fired).
    pub fn get(&self) -> u64 {
        self.handle().get()
    }
}

/// A histogram for `static` call sites; see [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Histogram>,
}

impl LazyHistogram {
    /// Declares a histogram named `name` without registering it yet.
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn handle(&self) -> &Histogram {
        self.cell.get_or_init(|| histogram(self.name))
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        if crate::enabled() {
            self.handle().observe(value);
        }
    }

    /// A point-in-time copy (registers the histogram if it never fired).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.handle().snapshot()
    }
}

/// Every registered metric at a point in time, sorted by name.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, state)` for every registered histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// State of the histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Captures every registered metric.  Sorted by name (registry iteration
/// order), so repeated snapshots of the same state render identically.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(name, c)| (name.clone(), c.get()))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(name, h)| (name.clone(), h.snapshot()))
        .collect();
    MetricsSnapshot {
        counters,
        histograms,
    }
}

/// Zeroes every registered counter and histogram (they stay registered).
/// For tests and per-campaign summaries; concurrent increments may land
/// before or after the reset.
pub fn reset_metrics() {
    let reg = registry();
    for c in reg.counters.lock().unwrap().values() {
        c.cell.store(0, Ordering::Relaxed);
    }
    for h in reg.histograms.lock().unwrap().values() {
        for b in &h.core.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.core.count.store(0, Ordering::Relaxed);
        h.core.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_the_documented_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's inclusive upper edge is the last value mapping to it.
        for k in 0..BUCKETS {
            let edge = bucket_upper_edge(k);
            assert_eq!(bucket_index(edge), k, "upper edge of bucket {k}");
            if k < 64 {
                assert_eq!(bucket_index(edge + 1), k + 1);
            }
        }
    }

    #[test]
    fn histogram_observe_places_values_in_exact_buckets() {
        let h = histogram("test_metrics_exact_buckets");
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1010);
        assert_eq!(snap.buckets[0], 1); // 0
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[3], 1); // 4
        assert_eq!(snap.buckets[10], 1); // 1000 ∈ [512, 1024)
    }

    #[test]
    fn counters_share_state_by_name_and_lazy_statics_resolve() {
        static LAZY: LazyCounter = LazyCounter::new("test_metrics_shared_total");
        LAZY.add(3);
        let same = counter("test_metrics_shared_total");
        same.inc();
        assert_eq!(LAZY.get(), 4);
        assert_eq!(same.get(), 4);
    }

    #[test]
    fn snapshot_is_sorted_and_indexable() {
        counter("test_metrics_snap_b_total").inc();
        counter("test_metrics_snap_a_total").add(2);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(snap.counter("test_metrics_snap_a_total"), Some(2));
    }
}
