//! Exporters over [`MetricsSnapshot`] and [`TraceSnapshot`]: Chrome
//! trace-event JSON, Prometheus-style text exposition, and a compact JSON
//! metrics snapshot.  All three are deterministic functions of their
//! snapshot (metrics sorted by name, trace in completion order), so golden
//! tests can assert on the exact output.

use crate::metrics::{bucket_upper_edge, MetricsSnapshot};
use crate::spans::{TraceEventKind, TraceSnapshot};
use std::fmt::Write;

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a trace as Chrome trace-event JSON (the "JSON array format" with
/// a `traceEvents` wrapper), loadable in `chrome://tracing` and Perfetto.
/// Spans become complete (`"ph": "X"`) events, instants become thread-scoped
/// instant (`"ph": "i"`) events; timestamps are microseconds with nanosecond
/// fractions.
pub fn chrome_trace_json(trace: &TraceSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, event) in trace.events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  {\"name\":\"");
        json_escape_into(&mut out, event.name);
        let _ = write!(
            out,
            "\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}",
            match event.kind {
                TraceEventKind::Complete => 'X',
                TraceEventKind::Instant => 'i',
            },
            event.start_ns / 1000,
            event.start_ns % 1000,
            event.tid
        );
        match event.kind {
            TraceEventKind::Complete => {
                let _ = write!(
                    out,
                    ",\"dur\":{}.{:03}",
                    event.dur_ns / 1000,
                    event.dur_ns % 1000
                );
            }
            TraceEventKind::Instant => out.push_str(",\"s\":\"t\""),
        }
        let _ = write!(out, ",\"args\":{{\"depth\":{}", event.depth);
        for (key, value) in &event.args {
            out.push_str(",\"");
            json_escape_into(&mut out, key);
            out.push_str("\":\"");
            json_escape_into(&mut out, value);
            out.push('"');
        }
        out.push_str("}}");
    }
    if trace.dropped > 0 {
        let _ = write!(
            out,
            ",\n  {{\"name\":\"bqc_obs_dropped_events\",\"ph\":\"i\",\"ts\":0.000,\"pid\":1,\
             \"tid\":0,\"s\":\"g\",\"args\":{{\"dropped\":{}}}}}",
            trace.dropped
        );
    }
    out.push_str("\n]}\n");
    out
}

/// The metric family a series belongs to: its name up to the label block,
/// e.g. `bqc_engine_cache_hits_total{shard="3"}` → `bqc_engine_cache_hits_total`.
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Renders every metric in the Prometheus text exposition format.
///
/// Counters print one `# TYPE <family> counter` header per family followed
/// by each series; histograms print cumulative `_bucket{le="..."}` lines at
/// the deterministic log2 edges (`2^k - 1`; empty buckets elided, `+Inf`
/// always present) plus `_sum` and `_count`.
pub fn prometheus_text(metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for (name, value) in &metrics.counters {
        let fam = family(name);
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} counter");
            last_family = fam;
        }
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in &metrics.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (k, &bucket) in hist.buckets.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            cumulative += bucket;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_upper_edge(k)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out
}

/// Renders every metric as one compact JSON object:
/// `{"counters":{...},"histograms":{"name":{"count":…,"sum":…,"buckets":[[k,n],…]}}}`
/// with histogram buckets as sparse `[bucket_index, count]` pairs.
pub fn json_snapshot(metrics: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in metrics.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(&mut out, name);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, hist)) in metrics.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(&mut out, name);
        let _ = write!(
            out,
            "\":{{\"count\":{},\"sum\":{},\"buckets\":[",
            hist.count, hist.sum
        );
        let mut first = true;
        for (k, &bucket) in hist.buckets.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{k},{bucket}]");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, BUCKETS};
    use crate::spans::{TraceEvent, TraceEventKind};

    fn sample_metrics() -> MetricsSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        buckets[0] = 2; // two zeros
        buckets[3] = 1; // one value in [4, 8)
        MetricsSnapshot {
            counters: vec![
                ("bqc_demo_hits_total{shard=\"0\"}".to_owned(), 4),
                ("bqc_demo_hits_total{shard=\"1\"}".to_owned(), 1),
                ("bqc_demo_pivots_total".to_owned(), 7),
            ],
            histograms: vec![(
                "bqc_demo_rounds".to_owned(),
                HistogramSnapshot {
                    buckets,
                    count: 3,
                    sum: 5,
                },
            )],
        }
    }

    #[test]
    fn prometheus_text_golden() {
        let expected = "\
# TYPE bqc_demo_hits_total counter
bqc_demo_hits_total{shard=\"0\"} 4
bqc_demo_hits_total{shard=\"1\"} 1
# TYPE bqc_demo_pivots_total counter
bqc_demo_pivots_total 7
# TYPE bqc_demo_rounds histogram
bqc_demo_rounds_bucket{le=\"0\"} 2
bqc_demo_rounds_bucket{le=\"7\"} 3
bqc_demo_rounds_bucket{le=\"+Inf\"} 3
bqc_demo_rounds_sum 5
bqc_demo_rounds_count 3
";
        assert_eq!(prometheus_text(&sample_metrics()), expected);
    }

    #[test]
    fn json_snapshot_golden() {
        let expected = "{\"counters\":{\
\"bqc_demo_hits_total{shard=\\\"0\\\"}\":4,\
\"bqc_demo_hits_total{shard=\\\"1\\\"}\":1,\
\"bqc_demo_pivots_total\":7},\
\"histograms\":{\"bqc_demo_rounds\":{\"count\":3,\"sum\":5,\"buckets\":[[0,2],[3,1]]}}}";
        assert_eq!(json_snapshot(&sample_metrics()), expected);
    }

    #[test]
    fn chrome_trace_golden() {
        let trace = TraceSnapshot {
            events: vec![
                TraceEvent {
                    name: "pivot",
                    kind: TraceEventKind::Instant,
                    start_ns: 1500,
                    dur_ns: 0,
                    tid: 0,
                    depth: 2,
                    args: Vec::new(),
                },
                TraceEvent {
                    name: "decide",
                    kind: TraceEventKind::Complete,
                    start_ns: 1000,
                    dur_ns: 2500,
                    tid: 0,
                    depth: 1,
                    args: vec![("pair", "00ff".to_owned())],
                },
            ],
            dropped: 0,
        };
        let expected = "{\"traceEvents\":[\n  \
{\"name\":\"pivot\",\"ph\":\"i\",\"ts\":1.500,\"pid\":1,\"tid\":0,\"s\":\"t\",\"args\":{\"depth\":2}},\n  \
{\"name\":\"decide\",\"ph\":\"X\",\"ts\":1.000,\"pid\":1,\"tid\":0,\"dur\":2.500,\
\"args\":{\"depth\":1,\"pair\":\"00ff\"}}\n]}\n";
        assert_eq!(chrome_trace_json(&trace), expected);
    }
}
