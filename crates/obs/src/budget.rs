//! Cooperative resource budgets for the decision stack.
//!
//! Bag containment sits at the edge of decidability: some instances are
//! pathologically expensive, and a serving deployment must bound the work a
//! single request can consume.  This module is the substrate of that bound —
//! it lives here (rather than in `bqc-core`, which re-exports it) because the
//! budget has to be chargeable from `bqc-lp`'s pivot loop and
//! `bqc-entropy`'s separator scan, both of which sit *below* `bqc-core` in
//! the crate DAG, and `bqc-obs` is the one zero-dependency crate everything
//! already depends on.
//!
//! A [`BudgetSpec`] is the immutable configuration (a wall-clock deadline
//! plus per-resource work caps); [`BudgetSpec::start`] turns it into a
//! running [`Budget`] for one decision.  Work sites *charge* the budget
//! ([`Budget::charge_pivots`], [`Budget::charge_separation_round`],
//! [`Budget::charge_hom_steps`]) and abort with an [`Exhausted`] error when a
//! cap is hit; control points *check* the deadline
//! ([`Budget::check_deadline`]).  Charging is cheap — relaxed atomics, with
//! the wall clock sampled only every [`DEADLINE_CHECK_PERIOD`] charges — so
//! an enabled-but-unexhausted budget costs a few nanoseconds per charge.
//!
//! ## Soundness contract
//!
//! Exhaustion is a *refusal to keep working*, never an answer: every caller
//! that receives [`Exhausted`] must surface it as an explicit
//! "resource exhausted" outcome (in `bqc-core`,
//! `Obstruction::ResourceExhausted`), must not report a verdict it did not
//! finish computing, and must not persist partial warm state derived from
//! the aborted computation.  The first exhaustion a budget observes is
//! **sticky**: every later charge or check fails immediately with the same
//! [`Exhausted`] value, so deeply nested loops unwind fast.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How many charges pass between wall-clock samples.  Deadline overshoot is
/// bounded by this many charge intervals; 64 keeps `Instant::now` off the
/// per-pivot hot path while still bounding a 10 ms deadline to well under a
/// millisecond of overshoot on the workloads the stack runs.
pub const DEADLINE_CHECK_PERIOD: u64 = 64;

/// The resource whose cap was hit first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BudgetResource {
    /// The wall-clock deadline elapsed.
    Deadline,
    /// The simplex pivot cap ([`BudgetSpec::max_pivots`]) was reached.
    Pivots,
    /// The separation-round cap ([`BudgetSpec::max_separation_rounds`]) was
    /// reached.
    SeparationRounds,
    /// The homomorphism-search step cap ([`BudgetSpec::max_hom_steps`]) was
    /// reached.
    HomSteps,
}

impl BudgetResource {
    /// A stable kebab-case token (used in wire responses and notes).
    pub fn token(self) -> &'static str {
        match self {
            BudgetResource::Deadline => "deadline",
            BudgetResource::Pivots => "pivots",
            BudgetResource::SeparationRounds => "separation-rounds",
            BudgetResource::HomSteps => "hom-steps",
        }
    }
}

impl std::fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// Why a budgeted computation stopped early: which resource ran out, how
/// much of it was spent, and what the cap was.  For
/// [`BudgetResource::Deadline`] both fields are in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Exhausted {
    /// The resource whose cap was hit first.
    pub resource: BudgetResource,
    /// How much of the resource was consumed when the cap was hit.
    pub spent: u64,
    /// The configured cap.
    pub limit: u64,
}

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let unit = match self.resource {
            BudgetResource::Deadline => "ms",
            _ => "",
        };
        write!(
            f,
            "{} budget exhausted ({}{unit} spent, limit {}{unit})",
            self.resource, self.spent, self.limit
        )
    }
}

impl std::error::Error for Exhausted {}

/// Immutable budget configuration: a deadline plus per-resource work caps.
/// The default is unlimited (no deadline, no caps); `Default`-constructed
/// specs add **zero** overhead to the decision path because
/// [`BudgetSpec::start`] then returns the no-op [`Budget`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct BudgetSpec {
    /// Wall-clock deadline for one decision, measured from
    /// [`BudgetSpec::start`].
    pub deadline: Option<Duration>,
    /// Cap on simplex pivots across every LP solve of one decision.
    pub max_pivots: Option<u64>,
    /// Cap on lazy-separation rounds across every Γ_n probe of one decision.
    pub max_separation_rounds: Option<u64>,
    /// Cap on homomorphism-search steps (backtracking nodes) of one decision.
    pub max_hom_steps: Option<u64>,
}

impl BudgetSpec {
    /// An explicitly unlimited spec (same as `Default`).
    pub const UNLIMITED: BudgetSpec = BudgetSpec {
        deadline: None,
        max_pivots: None,
        max_separation_rounds: None,
        max_hom_steps: None,
    };

    /// `true` when no deadline and no cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_pivots.is_none()
            && self.max_separation_rounds.is_none()
            && self.max_hom_steps.is_none()
    }

    /// Starts the running [`Budget`] for one decision: the deadline clock
    /// begins now.  An unlimited spec returns the no-op budget.
    pub fn start(&self) -> Budget {
        if self.is_unlimited() {
            return Budget::unlimited();
        }
        Budget {
            inner: Some(Arc::new(BudgetState {
                deadline_at: self.deadline.map(|d| Instant::now() + d),
                deadline_ms: self
                    .deadline
                    .map_or(u64::MAX, |d| d.as_millis().min(u64::MAX as u128) as u64),
                max_pivots: self.max_pivots.unwrap_or(u64::MAX),
                max_separation_rounds: self.max_separation_rounds.unwrap_or(u64::MAX),
                max_hom_steps: self.max_hom_steps.unwrap_or(u64::MAX),
                started: Instant::now(),
                pivots: AtomicU64::new(0),
                separation_rounds: AtomicU64::new(0),
                hom_steps: AtomicU64::new(0),
                charges: AtomicU64::new(0),
                exhausted: OnceLock::new(),
            })),
        }
    }
}

struct BudgetState {
    deadline_at: Option<Instant>,
    deadline_ms: u64,
    max_pivots: u64,
    max_separation_rounds: u64,
    max_hom_steps: u64,
    started: Instant,
    pivots: AtomicU64,
    separation_rounds: AtomicU64,
    hom_steps: AtomicU64,
    charges: AtomicU64,
    exhausted: OnceLock<Exhausted>,
}

/// The running budget of one decision.  Cheap to clone (an `Arc`); the
/// unlimited budget carries no state at all, so every charge on it is a
/// single `None` test.
#[derive(Clone)]
pub struct Budget {
    inner: Option<Arc<BudgetState>>,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Budget(unlimited)"),
            Some(state) => f
                .debug_struct("Budget")
                .field("pivots", &state.pivots.load(Ordering::Relaxed))
                .field(
                    "separation_rounds",
                    &state.separation_rounds.load(Ordering::Relaxed),
                )
                .field("hom_steps", &state.hom_steps.load(Ordering::Relaxed))
                .field("exhausted", &state.exhausted.get())
                .finish(),
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// The no-op budget: never exhausts, charges cost one pointer test.
    pub const fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// `true` when this is the no-op budget.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// The first exhaustion this budget observed, if any (sticky).
    pub fn exhaustion(&self) -> Option<Exhausted> {
        self.inner.as_ref().and_then(|s| s.exhausted.get().copied())
    }

    /// Simplex pivots charged so far.
    pub fn pivots_spent(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.pivots.load(Ordering::Relaxed))
    }

    /// Separation rounds charged so far.
    pub fn separation_rounds_spent(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.separation_rounds.load(Ordering::Relaxed))
    }

    /// Homomorphism-search steps charged so far.
    pub fn hom_steps_spent(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.hom_steps.load(Ordering::Relaxed))
    }

    /// A deterministic-format (but timing-dependent) one-line progress
    /// summary for "how far it got" reporting in traces and logs.
    pub fn progress_note(&self) -> String {
        match &self.inner {
            None => "unlimited budget".to_string(),
            Some(state) => format!(
                "spent pivots={} separation-rounds={} hom-steps={} elapsed-ms={}",
                state.pivots.load(Ordering::Relaxed),
                state.separation_rounds.load(Ordering::Relaxed),
                state.hom_steps.load(Ordering::Relaxed),
                state.started.elapsed().as_millis()
            ),
        }
    }

    fn fail(state: &BudgetState, exhausted: Exhausted) -> Exhausted {
        // First failure wins and is what every later charge reports.
        *state.exhausted.get_or_init(|| exhausted)
    }

    /// Checks the sticky flag and — every [`DEADLINE_CHECK_PERIOD`] charges —
    /// the wall clock.
    fn tick(state: &BudgetState) -> Result<(), Exhausted> {
        if let Some(&exhausted) = state.exhausted.get() {
            return Err(exhausted);
        }
        let charges = state.charges.fetch_add(1, Ordering::Relaxed);
        if charges % DEADLINE_CHECK_PERIOD == 0 {
            Self::deadline_probe(state)?;
        }
        Ok(())
    }

    fn deadline_probe(state: &BudgetState) -> Result<(), Exhausted> {
        if let Some(at) = state.deadline_at {
            if Instant::now() >= at {
                return Err(Self::fail(
                    state,
                    Exhausted {
                        resource: BudgetResource::Deadline,
                        spent: state.started.elapsed().as_millis().min(u64::MAX as u128) as u64,
                        limit: state.deadline_ms,
                    },
                ));
            }
        }
        Ok(())
    }

    /// Samples the wall clock now (also honors the sticky flag).  Control
    /// points — pipeline stage boundaries, separator scan slices — call this
    /// directly.
    pub fn check_deadline(&self) -> Result<(), Exhausted> {
        let Some(state) = &self.inner else {
            return Ok(());
        };
        if let Some(&exhausted) = state.exhausted.get() {
            return Err(exhausted);
        }
        Self::deadline_probe(state)
    }

    /// Charges `n` simplex pivots.
    pub fn charge_pivots(&self, n: u64) -> Result<(), Exhausted> {
        let Some(state) = &self.inner else {
            return Ok(());
        };
        Self::tick(state)?;
        let spent = state.pivots.fetch_add(n, Ordering::Relaxed) + n;
        if spent > state.max_pivots {
            return Err(Self::fail(
                state,
                Exhausted {
                    resource: BudgetResource::Pivots,
                    spent,
                    limit: state.max_pivots,
                },
            ));
        }
        Ok(())
    }

    /// Charges one lazy-separation round (and samples the wall clock —
    /// rounds are coarse enough that a per-round check is cheap).
    pub fn charge_separation_round(&self) -> Result<(), Exhausted> {
        let Some(state) = &self.inner else {
            return Ok(());
        };
        if let Some(&exhausted) = state.exhausted.get() {
            return Err(exhausted);
        }
        Self::deadline_probe(state)?;
        let spent = state.separation_rounds.fetch_add(1, Ordering::Relaxed) + 1;
        if spent > state.max_separation_rounds {
            return Err(Self::fail(
                state,
                Exhausted {
                    resource: BudgetResource::SeparationRounds,
                    spent,
                    limit: state.max_separation_rounds,
                },
            ));
        }
        Ok(())
    }

    /// Charges `n` homomorphism-search steps.
    pub fn charge_hom_steps(&self, n: u64) -> Result<(), Exhausted> {
        let Some(state) = &self.inner else {
            return Ok(());
        };
        Self::tick(state)?;
        let spent = state.hom_steps.fetch_add(n, Ordering::Relaxed) + n;
        if spent > state.max_hom_steps {
            return Err(Self::fail(
                state,
                Exhausted {
                    resource: BudgetResource::HomSteps,
                    spent,
                    limit: state.max_hom_steps,
                },
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let budget = BudgetSpec::default().start();
        assert!(budget.is_unlimited());
        for _ in 0..10_000 {
            budget.charge_pivots(1).unwrap();
            budget.charge_hom_steps(100).unwrap();
            budget.charge_separation_round().unwrap();
        }
        budget.check_deadline().unwrap();
        assert!(budget.exhaustion().is_none());
    }

    #[test]
    fn pivot_cap_is_enforced_and_sticky() {
        let spec = BudgetSpec {
            max_pivots: Some(10),
            ..BudgetSpec::default()
        };
        let budget = spec.start();
        for _ in 0..10 {
            budget.charge_pivots(1).unwrap();
        }
        let err = budget.charge_pivots(1).unwrap_err();
        assert_eq!(err.resource, BudgetResource::Pivots);
        assert_eq!(err.limit, 10);
        assert!(err.spent > 10);
        // Sticky: unrelated charges now fail with the same exhaustion.
        let again = budget.charge_hom_steps(1).unwrap_err();
        assert_eq!(again, err);
        assert_eq!(budget.exhaustion(), Some(err));
    }

    #[test]
    fn separation_round_cap_is_enforced() {
        let spec = BudgetSpec {
            max_separation_rounds: Some(2),
            ..BudgetSpec::default()
        };
        let budget = spec.start();
        budget.charge_separation_round().unwrap();
        budget.charge_separation_round().unwrap();
        let err = budget.charge_separation_round().unwrap_err();
        assert_eq!(err.resource, BudgetResource::SeparationRounds);
    }

    #[test]
    fn elapsed_deadline_fails_checks() {
        let spec = BudgetSpec {
            deadline: Some(Duration::from_millis(0)),
            ..BudgetSpec::default()
        };
        let budget = spec.start();
        std::thread::sleep(Duration::from_millis(2));
        let err = budget.check_deadline().unwrap_err();
        assert_eq!(err.resource, BudgetResource::Deadline);
        assert_eq!(err.limit, 0);
        // Charges observe it too (sticky short-circuit).
        assert!(budget.charge_pivots(1).is_err());
    }

    #[test]
    fn deadline_is_sampled_periodically_during_charges() {
        let spec = BudgetSpec {
            deadline: Some(Duration::from_millis(1)),
            ..BudgetSpec::default()
        };
        let budget = spec.start();
        std::thread::sleep(Duration::from_millis(3));
        // Within DEADLINE_CHECK_PERIOD charges the clock must be sampled.
        let mut failed = false;
        for _ in 0..=DEADLINE_CHECK_PERIOD {
            if budget.charge_hom_steps(1).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "deadline never observed across a full period");
    }

    #[test]
    fn progress_note_reports_spend() {
        let spec = BudgetSpec {
            max_pivots: Some(100),
            ..BudgetSpec::default()
        };
        let budget = spec.start();
        budget.charge_pivots(7).unwrap();
        budget.charge_separation_round().unwrap();
        let note = budget.progress_note();
        assert!(note.contains("pivots=7"), "{note}");
        assert!(note.contains("separation-rounds=1"), "{note}");
        assert_eq!(budget.pivots_spent(), 7);
        assert_eq!(budget.separation_rounds_spent(), 1);
    }

    #[test]
    fn display_forms_are_stable() {
        let err = Exhausted {
            resource: BudgetResource::Deadline,
            spent: 11,
            limit: 10,
        };
        assert_eq!(
            err.to_string(),
            "deadline budget exhausted (11ms spent, limit 10ms)"
        );
        assert_eq!(
            BudgetResource::SeparationRounds.token(),
            "separation-rounds"
        );
    }
}
