//! A std-only failpoint facility for chaos testing, compiled out by default.
//!
//! A *failpoint* is a named hook placed on an interesting failure boundary —
//! `persist::pre-fsync`, `serve::batch`, `pipeline::stage` — that normally
//! does nothing, but can be armed to panic, sleep, or kill the process, so
//! tests can exercise the exact crash and fault interleavings the design
//! claims to survive (torn snapshot writes, worker panics, wedged batchers).
//!
//! Like the metrics kill switch, the facility has a **compile-time** off
//! state: without the `failpoints` cargo feature, [`failpoint`] is an empty
//! inline function the optimizer deletes, so production builds carry no
//! lookup, no lock, and no branch.  With the feature on, each call consults
//! a process-global table configured either programmatically ([`set`] /
//! [`clear_all`]) or — for spawned-subprocess chaos tests — from the
//! `BQC_FAILPOINTS` environment variable, read once on first use:
//!
//! ```text
//! BQC_FAILPOINTS="persist::pre-fsync=sleep(2000);pipeline::stage=panic(1)"
//! ```
//!
//! Grammar: `name=action` pairs separated by `;`.  Actions:
//!
//! * `off` — disarm;
//! * `panic` / `panic(N)` — panic with a recognizable message, every time /
//!   only the first N times it is reached;
//! * `sleep(MS)` — block the calling thread for MS milliseconds (the hook a
//!   kill-at-this-moment torture test uses to hold a process at a chosen
//!   point);
//! * `abort` — `std::process::abort()`, the in-process stand-in for kill -9;
//! * `exit(CODE)` — `std::process::exit(CODE)`.

/// What an armed failpoint does when reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Do nothing (disarmed).
    Off,
    /// Panic with `failpoint <name> hit`.  `remaining = None` panics every
    /// time; `Some(n)` panics only the next `n` times, then disarms.
    Panic {
        /// How many more times to fire, `None` for always.
        remaining: Option<u32>,
    },
    /// Sleep for this many milliseconds, then continue.
    Sleep(u64),
    /// Abort the process (no unwinding, no cleanup — a kill -9 stand-in).
    Abort,
    /// Exit the process with this status code.
    Exit(i32),
}

#[cfg(feature = "failpoints")]
mod active {
    use super::FailAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    fn table() -> &'static Mutex<HashMap<String, FailAction>> {
        static TABLE: OnceLock<Mutex<HashMap<String, FailAction>>> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("BQC_FAILPOINTS") {
                for (name, action) in super::parse_spec(&spec) {
                    map.insert(name, action);
                }
            }
            Mutex::new(map)
        })
    }

    pub fn set(name: &str, action: FailAction) {
        let mut map = table().lock().unwrap_or_else(|poison| poison.into_inner());
        match action {
            FailAction::Off => {
                map.remove(name);
            }
            other => {
                map.insert(name.to_string(), other);
            }
        }
    }

    pub fn clear_all() {
        table()
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clear();
    }

    pub fn failpoint(name: &str) {
        // Fast path: an unarmed table is one lock + lookup.  Armed actions
        // that fire a bounded number of times are decremented under the
        // lock, then acted on outside it.
        let action = {
            let mut map = table().lock().unwrap_or_else(|poison| poison.into_inner());
            match map.get_mut(name) {
                None => return,
                Some(FailAction::Panic { remaining: Some(n) }) => {
                    let fire = *n > 0;
                    if fire {
                        *n -= 1;
                    }
                    if *n == 0 {
                        map.remove(name);
                    }
                    if fire {
                        FailAction::Panic { remaining: None }
                    } else {
                        FailAction::Off
                    }
                }
                Some(action) => *action,
            }
        };
        match action {
            FailAction::Off => {}
            FailAction::Panic { .. } => panic!("failpoint {name} hit"),
            FailAction::Sleep(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            FailAction::Abort => std::process::abort(),
            FailAction::Exit(code) => std::process::exit(code),
        }
    }
}

/// Parses a `BQC_FAILPOINTS`-style spec: `name=action` pairs separated by
/// `;`.  Malformed pairs are skipped — a chaos harness must never turn a
/// typo into silently different production behavior.
pub fn parse_spec(spec: &str) -> Vec<(String, FailAction)> {
    let mut out = Vec::new();
    for pair in spec.split(';') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let Some((name, action)) = pair.split_once('=') else {
            continue;
        };
        if name.trim().is_empty() {
            continue;
        }
        let Some(action) = parse_action(action.trim()) else {
            continue;
        };
        out.push((name.trim().to_string(), action));
    }
    out
}

fn parse_action(text: &str) -> Option<FailAction> {
    if text == "off" {
        return Some(FailAction::Off);
    }
    if text == "panic" {
        return Some(FailAction::Panic { remaining: None });
    }
    if text == "abort" {
        return Some(FailAction::Abort);
    }
    if let Some(arg) = text
        .strip_prefix("panic(")
        .and_then(|s| s.strip_suffix(')'))
    {
        return Some(FailAction::Panic {
            remaining: Some(arg.trim().parse().ok()?),
        });
    }
    if let Some(arg) = text
        .strip_prefix("sleep(")
        .and_then(|s| s.strip_suffix(')'))
    {
        return Some(FailAction::Sleep(arg.trim().parse().ok()?));
    }
    if let Some(arg) = text.strip_prefix("exit(").and_then(|s| s.strip_suffix(')')) {
        return Some(FailAction::Exit(arg.trim().parse().ok()?));
    }
    None
}

/// Evaluates the failpoint `name`.  A no-op (deleted by the optimizer)
/// unless the crate is built with the `failpoints` feature.
#[cfg(feature = "failpoints")]
pub fn failpoint(name: &str) {
    active::failpoint(name);
}

/// Evaluates the failpoint `name`.  A no-op (deleted by the optimizer)
/// unless the crate is built with the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn failpoint(_name: &str) {}

/// Arms (or with [`FailAction::Off`] disarms) the failpoint `name`.  A no-op
/// without the `failpoints` feature.
#[cfg(feature = "failpoints")]
pub fn set(name: &str, action: FailAction) {
    active::set(name, action);
}

/// Arms (or with [`FailAction::Off`] disarms) the failpoint `name`.  A no-op
/// without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn set(_name: &str, _action: FailAction) {}

/// Disarms every failpoint.  A no-op without the `failpoints` feature.
#[cfg(feature = "failpoints")]
pub fn clear_all() {
    active::clear_all();
}

/// Disarms every failpoint.  A no-op without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn clear_all() {}

/// `true` when the facility is compiled in (the `failpoints` feature is on).
pub const fn compiled_in() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        let parsed = parse_spec(
            "persist::pre-fsync=sleep(2000); pipeline::stage=panic(1) ;x=abort;y=exit(9);z=panic",
        );
        assert_eq!(
            parsed,
            vec![
                ("persist::pre-fsync".into(), FailAction::Sleep(2000)),
                (
                    "pipeline::stage".into(),
                    FailAction::Panic { remaining: Some(1) }
                ),
                ("x".into(), FailAction::Abort),
                ("y".into(), FailAction::Exit(9)),
                ("z".into(), FailAction::Panic { remaining: None }),
            ]
        );
    }

    #[test]
    fn malformed_pairs_are_skipped() {
        assert!(parse_spec("nonsense;a=;=panic;b=sleep(x);c=panic(-1)").is_empty());
        assert_eq!(
            parse_spec("good=off;;bad").as_slice(),
            &[("good".to_string(), FailAction::Off)]
        );
    }

    // The firing behavior itself is covered by the chaos suite (root
    // `tests/chaos.rs`, compiled with `--features failpoints`); in a default
    // build the functions below must all be inert.
    #[test]
    fn disarmed_or_compiled_out_failpoints_are_inert() {
        failpoint("never::armed");
        if !compiled_in() {
            set("anything", FailAction::Abort);
            failpoint("anything"); // still inert: compiled out
        }
        clear_all();
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn bounded_panic_fires_then_disarms() {
        set("test::bounded", FailAction::Panic { remaining: Some(1) });
        let hit =
            std::panic::catch_unwind(|| failpoint("test::bounded")).expect_err("must panic once");
        let message = hit.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("failpoint test::bounded hit"), "{message}");
        // Second reach: disarmed.
        failpoint("test::bounded");
        clear_all();
    }
}
