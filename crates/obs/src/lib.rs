#![warn(missing_docs)]
//! # bqc-obs — zero-dependency metrics and span tracing for the workspace
//!
//! The decision stack built in PRs 3–5 (eta-file revised simplex, lazy
//! Shannon-cone separation, Farkas-support warm re-probes, the sharded
//! decision cache) is fast precisely because most of its work is invisible:
//! pivots, reinversions, `Scalar` promotions, separation rounds.  This crate
//! makes that machinery observable without adding dependencies or changing
//! verdicts:
//!
//! * [`metrics`] — process-wide **counters** and fixed-log2-bucket
//!   **histograms** behind relaxed atomics, registered by name on first use
//!   (naming scheme: `bqc_<crate>_<thing>_total`).  Bucket edges are
//!   deterministic powers of two ([`metrics::bucket_index`]) so tests can
//!   assert on them.
//! * [`spans`] — hierarchical **spans** with a thread-local depth stack and a
//!   cheap RAII guard ([`spans::SpanGuard`]), plus zero-duration instant
//!   events for high-frequency occurrences (pivots, separation rounds).
//!   Tracing is **off by default** and costs one relaxed atomic load per
//!   probe while off; [`start_tracing`] / [`stop_tracing`] bracket a
//!   collection window.
//! * [`export`] — three exporters over the snapshots: Chrome trace-event
//!   JSON (loadable in `chrome://tracing` / Perfetto), Prometheus-style text
//!   exposition, and a compact JSON metrics snapshot.
//! * [`budget`] — cooperative **resource budgets** (deadline + work caps)
//!   charged from the LP pivot loop, the separator scan and the
//!   homomorphism search; lives here so the crates below `bqc-core` in the
//!   DAG can charge it (re-exported as `bqc_core::Budget`).
//! * [`failpoints`] — chaos-testing **failpoints**, compiled out by default
//!   (`failpoints` cargo feature), driving the crash/fault suite.
//!
//! ## Overhead policy
//!
//! Counters are always live (a relaxed `fetch_add` on the slow paths they
//! instrument); the runtime kill switch [`set_enabled`] turns them into a
//! single relaxed load + untaken branch, which is what the CI overhead floor
//! (`pipeline/obs/*` in `scripts/bench_compare.sh`) measures.  Building with
//! `default-features = false` removes even that: [`enabled`] const-folds to
//! `false` and the optimizer deletes every probe.
//!
//! ## Determinism boundary
//!
//! Metrics and spans are *observational*: nothing downstream reads them, so
//! verdicts are byte-identical with observability on, off, or compiled out.
//! Trace *timings* vary run to run, but the timing-free projection
//! ([`spans::TraceSnapshot::signature`]) of a single-threaded run is
//! deterministic — the same invariant shape as `DecisionTrace::signature()`.

pub mod budget;
pub mod export;
pub mod failpoints;
pub mod metrics;
pub mod spans;

pub use budget::{Budget, BudgetResource, BudgetSpec, Exhausted};
pub use export::{chrome_trace_json, json_snapshot, prometheus_text};
pub use failpoints::{failpoint, FailAction};
pub use metrics::{
    bucket_index, bucket_upper_edge, counter, histogram, reset_metrics, snapshot, Counter,
    Histogram, HistogramSnapshot, LazyCounter, LazyHistogram, MetricsSnapshot, BUCKETS,
};
pub use spans::{
    instant, span, span_with_arg, start_tracing, stop_tracing, tracing_active, SpanGuard,
    TraceEvent, TraceEventKind, TraceSnapshot,
};

use std::sync::atomic::{AtomicBool, Ordering};

/// Runtime kill switch for metrics; tracing has its own (off-by-default)
/// switch in [`spans`].  Defaults to on when the `enabled` feature is on.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns metric collection on or off at runtime.
///
/// A no-op when the crate is built without the `enabled` feature (metrics
/// are then compiled out entirely).
pub fn set_enabled(on: bool) {
    if cfg!(feature = "enabled") {
        METRICS_ENABLED.store(on, Ordering::Relaxed);
    }
}

/// Whether metric probes currently record.  With the `enabled` feature off
/// this const-folds to `false` and probes compile to nothing.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "enabled") && METRICS_ENABLED.load(Ordering::Relaxed)
}
