//! Hierarchical spans and instant events with a thread-local depth stack.
//!
//! Tracing is a process-wide collection window: [`start_tracing`] clears the
//! buffer and arms collection, [`stop_tracing`] disarms it and returns the
//! captured [`TraceSnapshot`].  While disarmed, [`span`] and [`instant`]
//! cost one relaxed atomic load.  While armed, a [`SpanGuard`] records its
//! thread id, nesting depth (thread-local), and start time on creation, and
//! appends one completed event on drop — including drops during a panic
//! unwind, which keeps the depth stack balanced.
//!
//! Events are appended in *completion* order (program order of the push
//! calls), so for a single-threaded deterministic computation the event
//! sequence — and therefore [`TraceSnapshot::signature`] — is identical
//! across runs even though the timings differ.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered events; past it, events are counted as dropped
/// rather than grown without bound (a traced run is a bounded window, but a
/// forgotten `stop_tracing` must not eat the heap).
const MAX_EVENTS: usize = 1 << 18;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static TID: Cell<Option<u64>> = const { Cell::new(None) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Small dense thread ids (0 = first thread to trace, usually `main`), used
/// as the Chrome trace `tid`.
fn current_tid() -> u64 {
    TID.with(|t| match t.get() {
        Some(v) => v,
        None => {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(v));
            v
        }
    })
}

/// Whether a tracing window is currently armed.  With the `enabled` feature
/// off this const-folds to `false`.
#[inline]
pub fn tracing_active() -> bool {
    cfg!(feature = "enabled") && ACTIVE.load(Ordering::Relaxed)
}

/// Arms collection: clears any buffered events and starts a fresh window.
pub fn start_tracing() {
    if !cfg!(feature = "enabled") {
        return;
    }
    let _ = epoch();
    let mut events = EVENTS.lock().unwrap();
    events.clear();
    DROPPED.store(0, Ordering::Relaxed);
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Disarms collection and returns everything captured since
/// [`start_tracing`].  Spans still open when the window closes are not
/// recorded (their guards only balance the depth stack).
pub fn stop_tracing() -> TraceSnapshot {
    ACTIVE.store(false, Ordering::Relaxed);
    let mut events = EVENTS.lock().unwrap();
    TraceSnapshot {
        events: std::mem::take(&mut *events),
        dropped: DROPPED.swap(0, Ordering::Relaxed),
    }
}

/// What kind of trace event a record is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span with a duration (Chrome `"ph": "X"`).
    Complete,
    /// A point-in-time marker (Chrome `"ph": "i"`).
    Instant,
}

/// One captured event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span or marker name (static by design: the span taxonomy is code).
    pub name: &'static str,
    /// Complete span or instant marker.
    pub kind: TraceEventKind,
    /// Nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Dense thread id (see the module docs).
    pub tid: u64,
    /// Nesting depth on its thread when the event began (0 = top level).
    pub depth: u32,
    /// Key/value annotations, e.g. the canonical pair hash on a `decide`
    /// span.
    pub args: Vec<(&'static str, String)>,
}

struct SpanInner {
    name: &'static str,
    start_ns: u64,
    tid: u64,
    depth: u32,
    args: Vec<(&'static str, String)>,
}

/// RAII guard returned by [`span`]: records the completed span when dropped,
/// panic unwinds included.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Attaches a key/value annotation to the span.
    pub fn arg(&mut self, key: &'static str, value: String) {
        if let Some(inner) = self.inner.as_mut() {
            inner.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            if !tracing_active() {
                return;
            }
            let end_ns = now_ns();
            push_event(TraceEvent {
                name: inner.name,
                kind: TraceEventKind::Complete,
                start_ns: inner.start_ns,
                dur_ns: end_ns.saturating_sub(inner.start_ns),
                tid: inner.tid,
                depth: inner.depth,
                args: inner.args,
            });
        }
    }
}

/// Opens a span; the returned guard closes it when dropped.  Free while
/// tracing is disarmed (the guard is then inert).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_active() {
        return SpanGuard { inner: None };
    }
    let tid = current_tid();
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        inner: Some(SpanInner {
            name,
            start_ns: now_ns(),
            tid,
            depth,
            args: Vec::new(),
        }),
    }
}

/// [`span`] with one annotation attached up front.
pub fn span_with_arg(name: &'static str, key: &'static str, value: String) -> SpanGuard {
    let mut guard = span(name);
    guard.arg(key, value);
    guard
}

/// Records a point-in-time marker at the current nesting depth (e.g. one
/// simplex pivot).  Free while tracing is disarmed.
#[inline]
pub fn instant(name: &'static str) {
    if !tracing_active() {
        return;
    }
    push_event(TraceEvent {
        name,
        kind: TraceEventKind::Instant,
        start_ns: now_ns(),
        dur_ns: 0,
        tid: current_tid(),
        depth: DEPTH.with(|d| d.get()),
        args: Vec::new(),
    });
}

fn push_event(event: TraceEvent) {
    let mut events = EVENTS.lock().unwrap();
    if events.len() >= MAX_EVENTS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(event);
}

/// Everything one tracing window captured.
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// Captured events in completion order.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the buffer cap was hit.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// The timing-free projection of the trace: every event's name, kind,
    /// and depth, in completion order.  For a single-threaded deterministic
    /// computation this string is identical across runs — the observability
    /// mirror of `DecisionTrace::signature()`.
    pub fn signature(&self) -> String {
        let mut out = String::new();
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(" → ");
            }
            if event.kind == TraceEventKind::Instant {
                out.push('!');
            }
            out.push_str(event.name);
            out.push('@');
            out.push_str(&event.depth.to_string());
        }
        out
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the window captured nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracing window is process-global; span tests serialize on this.
    fn test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn spans_nest_and_record_in_completion_order() {
        let _guard = test_lock().lock().unwrap();
        start_tracing();
        {
            let _outer = span("outer");
            instant("tick");
            {
                let _inner = span("inner");
            }
        }
        let trace = stop_tracing();
        assert_eq!(
            trace.signature(),
            "!tick@1 → inner@1 → outer@0",
            "instant fires first, inner closes before outer"
        );
        assert_eq!(trace.events[2].args, Vec::new());
        assert!(trace.events[2].dur_ns >= trace.events[1].dur_ns);
    }

    #[test]
    fn guard_is_panic_safe_and_rebalances_depth() {
        let _guard = test_lock().lock().unwrap();
        start_tracing();
        let result = std::panic::catch_unwind(|| {
            let _outer = span("panicking");
            panic!("boom");
        });
        assert!(result.is_err());
        // The unwound guard recorded its span and restored depth 0: a new
        // top-level span starts at depth 0 again.
        {
            let _after = span("after");
        }
        let trace = stop_tracing();
        assert_eq!(trace.signature(), "panicking@0 → after@0");
    }

    #[test]
    fn disarmed_probes_record_nothing() {
        let _guard = test_lock().lock().unwrap();
        let _ = stop_tracing();
        {
            let _ignored = span("ignored");
            instant("ignored-too");
        }
        start_tracing();
        let trace = stop_tracing();
        assert!(trace.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn span_args_are_captured() {
        let _guard = test_lock().lock().unwrap();
        start_tracing();
        {
            let _s = span_with_arg("decide", "pair", "00ff".to_owned());
        }
        let trace = stop_tracing();
        assert_eq!(trace.events[0].args, vec![("pair", "00ff".to_owned())]);
    }
}
