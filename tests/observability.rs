//! Observability integration: span nesting across crate boundaries,
//! trace-signature determinism, and the metric registry fed by real engine
//! runs.
//!
//! The tracing window and the metric registry are process-global, so every
//! test here serializes on one lock — within this binary nothing else may
//! record spans while a window is open (other integration-test binaries are
//! separate processes and cannot interfere).

use bag_query_containment::obs;
use bag_query_containment::prelude::*;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Four questions: one LP-deciding pair, one homomorphism refutation, a
/// renamed spelling of the first (deduplicated in flight), and the
/// pendant-edge diamond (undecidable here) whose Γ-probe needs actual
/// separation rounds — the seed rows alone don't refute its relaxation.
fn workload() -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    [
        ("Q1() :- R(x,y), R(y,z), R(z,x)", "Q2() :- R(u,v), R(u,w)"),
        ("Q1() :- R(x,y)", "Q2() :- S(u,v)"),
        ("A() :- R(c,a), R(a,b), R(b,c)", "B() :- R(h,k), R(h,j)"),
        (
            "Q1() :- R(a,b), R(b,c), R(a,c), R(b,d), R(c,d), R(a,e)",
            "Q2() :- R(a,b), R(b,c), R(a,c), R(b,d), R(c,d)",
        ),
    ]
    .iter()
    .map(|(a, b)| (parse_query(a).unwrap(), parse_query(b).unwrap()))
    .collect()
}

/// `workers: 1` makes the batch executor run inline on the calling thread,
/// which is what makes its trace single-threaded and hence deterministic.
fn single_threaded_engine() -> Engine {
    Engine::new(EngineOptions {
        workers: 1,
        ..EngineOptions::default()
    })
}

#[test]
fn trace_signature_is_deterministic_across_identical_runs() {
    let _window = OBS_LOCK.lock().unwrap();
    let requests = workload();
    let run = || {
        // A cold engine per run: the cache state (and therefore the set of
        // spans recorded) must be identical between the two windows.
        let engine = single_threaded_engine();
        obs::start_tracing();
        engine.decide_batch(&requests);
        obs::stop_tracing()
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty(), "the run recorded no spans");
    assert_eq!(first.dropped, 0);
    assert_eq!(
        first.signature(),
        second.signature(),
        "the timing-free span projection must not vary between identical \
         single-threaded runs"
    );
}

#[test]
fn lp_spans_nest_under_pipeline_stages() {
    let _window = OBS_LOCK.lock().unwrap();
    let engine = single_threaded_engine();
    obs::start_tracing();
    engine.decide_batch(&workload());
    let trace = obs::stop_tracing();
    let find = |name: &str| {
        trace
            .events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no `{name}` span recorded"))
    };
    let batch = find("decide-batch");
    let decide = find("decide");
    let pipeline = find("pipeline");
    let stage = find("shannon-lp");
    let solve = find("lp-solve");
    assert_eq!(batch.depth, 0, "the batch span is the root");
    assert!(pipeline.depth > decide.depth);
    assert!(stage.depth > pipeline.depth);
    assert!(solve.depth > stage.depth);
    // The decide span is annotated with its canonical pair hash (what lets
    // `bqc --explain` attach the span tree to the right answer).
    assert!(decide.args.iter().any(|(k, _)| *k == "pair"));
    // Interval containment, not just depth: some shannon-lp stage span
    // encloses an lp-solve span on the same thread.
    let encloses = |outer: &obs::TraceEvent, inner: &obs::TraceEvent| {
        outer.tid == inner.tid
            && outer.start_ns <= inner.start_ns
            && inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns
    };
    assert!(
        trace
            .events
            .iter()
            .filter(|e| e.name == "shannon-lp")
            .any(|s| encloses(s, solve)),
        "an LP solve must run inside a shannon-lp pipeline stage"
    );
    // Pivot instants land inside the LP solve they belong to.
    assert!(
        trace
            .events
            .iter()
            .filter(|e| e.name == "pivot")
            .all(|p| trace
                .events
                .iter()
                .filter(|e| e.name == "lp-solve")
                .any(|s| encloses(s, p))),
        "every pivot marker must fall within an lp-solve span"
    );
}

#[test]
fn engine_runs_populate_the_metric_registry() {
    let _window = OBS_LOCK.lock().unwrap();
    let engine = single_threaded_engine();
    let requests = workload();
    engine.decide_batch(&requests);
    engine.decide_batch(&requests); // warm: every leader is a cache hit
    let metrics = obs::snapshot();
    for name in [
        "bqc_lp_solves_total",
        "bqc_lp_pivots_total",
        "bqc_entropy_separation_scans_total",
        "bqc_entropy_elementals_scanned_total",
        "bqc_iip_probes_total",
        "bqc_iip_separation_rounds_total",
        "bqc_engine_fresh_decisions_total",
        "bqc_engine_cached_hits_total",
        "bqc_engine_deduped_total",
        "bqc_engine_batches_total",
    ] {
        assert!(
            metrics.counter(name).unwrap_or(0) > 0,
            "counter `{name}` missing or zero after an LP-deciding batch"
        );
    }
    for name in ["bqc_lp_pivots_per_solve", "bqc_engine_decide_micros"] {
        let histogram = metrics
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram `{name}` missing"));
        assert!(histogram.count > 0, "histogram `{name}` never observed");
    }
    // The short-circuited bucket is per engine: one in-flight dedup per
    // batch, and the second batch's three distinct pairs all hit the cache.
    let short = engine.short_circuit_stats();
    assert_eq!(short.deduped, 2);
    assert_eq!(short.cached, 3);
    let fresh: u64 = engine.pipeline_stats().iter().map(|s| s.decided).sum();
    assert_eq!(fresh + short.total(), 8, "traffic covers all 2x4 requests");
}
