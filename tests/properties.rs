//! Property-based integration tests (proptest) on the invariants the paper's
//! correctness rests on.

use bag_query_containment::prelude::*;
use bqc_arith::int;
use bqc_core::count_homomorphisms_acyclic;
use bqc_entropy::{all_masks, modularize, relation_entropy, step_function};
use proptest::prelude::*;

/// Strategy: a random exact polymatroid built as a non-negative integer
/// combination of step functions over `n` variables (always normal, hence a
/// polymatroid — and a convenient exact generator).
fn normal_polymatroid(n: usize) -> impl Strategy<Value = SetFunction> {
    let subsets = (1usize << n) - 1; // proper subsets of the full set (masks 0..full)
    proptest::collection::vec(0u32..3, subsets).prop_map(move |coeffs| {
        let vars: Vec<String> = (0..n).map(|i| format!("V{i}")).collect();
        let mut total = SetFunction::zero(vars.clone());
        for (w, &c) in coeffs.iter().enumerate() {
            if c > 0 {
                let step = step_function(vars.clone(), w as u32).scale(&int(c as i64));
                total = total.add(&step);
            }
        }
        total
    })
}

/// Strategy: a "capped modular" polymatroid h(X) = min(Σ_{i∈X} w_i, cap),
/// which is generally *not* normal — a good stress input for Lemma 3.7.
fn capped_polymatroid(n: usize) -> impl Strategy<Value = SetFunction> {
    (proptest::collection::vec(0i64..4, n), 1i64..6).prop_map(move |(weights, cap)| {
        let vars: Vec<String> = (0..n).map(|i| format!("V{i}")).collect();
        let mut h = SetFunction::zero(vars);
        for mask in all_masks(n) {
            let total: i64 = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| weights[i])
                .sum();
            h.set_value(mask, int(total.min(cap)));
        }
        h
    })
}

/// Strategy: a random directed-graph database over a small domain.
fn small_graph() -> impl Strategy<Value = Structure> {
    proptest::collection::vec((0i64..4, 0i64..4), 0..10).prop_map(|edges| {
        let mut db = Structure::empty();
        db.add_domain_value(Value::int(0));
        for (a, b) in edges {
            db.add_fact("R", vec![Value::int(a), Value::int(b)]);
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Entropies of random relations are (approximately) polymatroids.
    #[test]
    fn relation_entropies_are_polymatroids(
        rows in proptest::collection::vec((0i64..3, 0i64..3, 0i64..3), 1..12)
    ) {
        let mut relation = VRelation::new(vec!["A".into(), "B".into(), "C".into()]);
        for (a, b, c) in rows {
            relation.insert(vec![Value::int(a), Value::int(b), Value::int(c)]);
        }
        let entropy = relation_entropy(&relation);
        prop_assert!(entropy.is_approx_polymatroid(1e-9));
    }

    /// Lemma 3.7 item (1): modularization lower-bounds the polymatroid and
    /// preserves the top value.
    #[test]
    fn modularization_invariants(h in capped_polymatroid(4)) {
        prop_assume!(is_polymatroid(&h));
        let modular = modularize(&h);
        prop_assert!(bqc_entropy::is_modular(&modular));
        prop_assert!(modular.dominated_by(&h));
        prop_assert_eq!(modular.value(h.full_mask()), h.value(h.full_mask()));
    }

    /// Lemma 3.7 item (2): normalization lower-bounds the polymatroid,
    /// preserves the top and all singletons, and lands in N_n.
    #[test]
    fn normalization_invariants(h in capped_polymatroid(4)) {
        prop_assume!(is_polymatroid(&h));
        let normalized = normalize(&h);
        prop_assert!(is_normal(&normalized));
        prop_assert!(is_polymatroid(&normalized));
        prop_assert!(normalized.dominated_by(&h));
        prop_assert_eq!(normalized.value(h.full_mask()), h.value(h.full_mask()));
        for i in 0..h.num_vars() {
            prop_assert_eq!(normalized.value(1 << i), h.value(1 << i));
        }
    }

    /// Möbius inversion round-trips on arbitrary normal polymatroids, and the
    /// step decomposition reconstructs the function.
    #[test]
    fn mobius_and_step_decomposition_roundtrip(h in normal_polymatroid(4)) {
        let g = h.mobius_inverse();
        let back = SetFunction::from_mobius(h.vars().to_vec(), &g);
        prop_assert_eq!(&back, &h);
        let normal = NormalFunction::try_from_set_function(&h).expect("input is normal");
        prop_assert_eq!(normal.to_set_function(), h);
    }

    /// The Shannon-cone prover accepts every non-negative combination of
    /// elemental inequalities (soundness of "ValidShannon" on easy cases) and
    /// its counterexamples really violate the inequality.
    #[test]
    fn prover_counterexamples_are_genuine(
        coeffs in proptest::collection::vec(-2i64..3, 4)
    ) {
        let universe: Vec<String> = vec!["A".into(), "B".into(), "C".into()];
        let sets: [&[&str]; 4] = [&["A"], &["B"], &["A", "B"], &["A", "B", "C"]];
        let mut expr = EntropyExpr::zero();
        for (coeff, set) in coeffs.iter().zip(sets.iter()) {
            expr.add_term(int(*coeff), set.iter().copied());
        }
        let inequality = LinearInequality::new(universe, expr);
        match check_linear_inequality(&inequality) {
            bqc_iip::GammaValidity::ValidShannon => {
                // Spot-check on a few concrete polymatroids.
                let bits = SetFunction::from_values(
                    inequality.variables.clone(),
                    (0..8).map(|m: u32| int(m.count_ones() as i64)).collect(),
                );
                prop_assert!(inequality.holds_on(&bits));
            }
            bqc_iip::GammaValidity::NotShannonProvable { counterexample } => {
                prop_assert!(is_polymatroid(&counterexample));
                prop_assert!(!inequality.holds_on(&counterexample));
            }
        }
    }

    /// Backtracking and junction-tree counting agree on acyclic queries over
    /// random databases.
    #[test]
    fn hom_counters_agree(db in small_graph()) {
        for text in ["Q() :- R(x,y), R(y,z)", "Q() :- R(x,y), R(x,z)", "Q() :- R(x,x), R(x,y)"] {
            let q = parse_query(text).unwrap();
            prop_assert_eq!(
                count_homomorphisms_acyclic(&q, &db),
                Some(count_homomorphisms(&q, &db))
            );
        }
    }

    /// Soundness of "Contained" answers (Theorem 4.2): whenever the decision
    /// procedure says contained, random small databases never violate it.
    #[test]
    fn contained_answers_hold_on_random_databases(db in small_graph()) {
        let q1 = parse_query("Q1() :- R(x,y), R(y,z), R(z,x)").unwrap();
        let q2 = parse_query("Q2() :- R(u,v), R(u,w)").unwrap();
        // (Decided once outside the loop would be better, but the decision is
        // cheap for this fixed pair and keeps the property self-contained.)
        let answer = decide_containment(&q1, &q2).unwrap();
        prop_assert!(answer.is_contained());
        prop_assert!(count_homomorphisms(&q1, &db) <= count_homomorphisms(&q2, &db));
    }

    /// Disjoint powers multiply homomorphism counts (the `n·A` construction
    /// behind the exponent-domination reduction).
    #[test]
    fn powers_multiply_counts(db in small_graph(), n in 1usize..4) {
        let q = parse_query("Q() :- R(x,y)").unwrap();
        let single = count_homomorphisms(&q, &db);
        let powered = q.power(n);
        prop_assert_eq!(count_homomorphisms(&powered, &db), single.pow(n as u32));
    }
}
