//! Integration tests reproducing every worked example in the paper.
//!
//! Each test corresponds to one experiment id in EXPERIMENTS.md (E1–E7) and
//! exercises the public API across crates exactly the way the paper's text
//! walks through the example.

use bag_query_containment::prelude::*;
use bqc_arith::int;
use bqc_entropy::varset;
use std::collections::BTreeSet;

/// E1 — Example 4.3 (Eric Vee): the triangle is contained in the 2-out-star,
/// and the proof goes through the inequality of Example 3.8.
#[test]
fn example_4_3_and_3_8() {
    let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
    let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();

    // The decision procedure agrees with the paper.
    assert!(decide_containment(&triangle, &star).unwrap().is_contained());
    assert!(decide_containment(&star, &triangle)
        .unwrap()
        .is_not_contained());

    // Example 3.8's max-inequality h(X1X2X3) <= max(E1, E2, E3) is valid.
    let universe: Vec<String> = vec!["X1".into(), "X2".into(), "X3".into()];
    let make = |top: [&str; 2], y: &str, x: &str| {
        let mut e = EntropyExpr::zero();
        e.add_term(int(1), top);
        e.add_conditional(int(1), &varset([y]), &varset([x]));
        e.add_term(int(-1), ["X1", "X2", "X3"]);
        e
    };
    let inequality = MaxInequality::new(
        universe,
        vec![
            make(["X1", "X2"], "X2", "X1"),
            make(["X2", "X3"], "X3", "X2"),
            make(["X1", "X3"], "X1", "X3"),
        ],
    );
    assert!(check_max_inequality(&inequality).is_valid());

    // And the containment counts hold on concrete databases.
    for facts in [
        "R(1,2). R(2,3). R(3,1).",
        "R(1,1). R(1,2). R(2,1).",
        "R(1,2). R(1,3). R(2,3). R(3,2). R(2,1). R(3,1).",
    ] {
        let db = parse_structure(facts).unwrap();
        assert!(count_homomorphisms(&triangle, &db) <= count_homomorphisms(&star, &db));
    }
}

/// E2 — Example 3.5: a normal witness exists, no product witness does.
#[test]
fn example_3_5() {
    let q1 =
        parse_query("Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')")
            .unwrap();
    let q2 = parse_query("Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)").unwrap();

    // Q2 is acyclic with a simple junction tree (the paper's chain
    // {y1,y3} - {y1,y2} - {y2,y4}).
    let graph = Graph::from_cliques(q2.hyperedges());
    let jt = junction_tree(&graph).expect("Q2 is chordal");
    assert!(jt.is_simple());
    assert_eq!(jt.num_nodes(), 3);

    // The paper's witness P = {(u,u,v,v) | u,v in [n]} works for every n > 1.
    for n in 2..=4i64 {
        let product = VRelation::product(&[
            ("u".to_string(), (1..=n).map(Value::int).collect()),
            ("v".to_string(), (1..=n).map(Value::int).collect()),
        ]);
        let psi: Vec<(String, BTreeSet<String>)> = vec![
            ("x1".to_string(), ["u".to_string()].into_iter().collect()),
            ("x2".to_string(), ["u".to_string()].into_iter().collect()),
            ("x1'".to_string(), ["v".to_string()].into_iter().collect()),
            ("x2'".to_string(), ["v".to_string()].into_iter().collect()),
        ];
        let witness_relation = VRelation::normal_relation(&product, &psi);
        let witness = verify_witness(&q1, &q2, &witness_relation).expect("paper witness verifies");
        assert_eq!(witness.hom_q1, (n * n) as u128);
        assert_eq!(witness.hom_q2, n as u128);
    }

    // No product witness among all small product relations.
    assert!(search_product_witness(&q1, &q2, &[1, 2, 3], 100).is_none());

    // The decision procedure returns NotContained with a verified witness.
    // With default options the counting refuter separates the pair on the
    // canonical database of Q1 before any LP work, so no violating
    // polymatroid is attached.
    match decide_containment(&q1, &q2).unwrap() {
        ContainmentAnswer::NotContained {
            witness,
            counterexample,
        } => {
            assert!(counterexample.is_none());
            assert!(witness.is_some());
        }
        other => panic!("expected NotContained, got {other:?}"),
    }
    // With the refuter disabled the Theorem 3.1 LP path decides and attaches
    // its violating polymatroid, as before the staged pipeline.
    let lp_only = DecideOptions {
        counting_refuter: false,
        ..DecideOptions::default()
    };
    match decide_containment_with(&q1, &q2, &lp_only).unwrap() {
        ContainmentAnswer::NotContained {
            witness,
            counterexample,
        } => {
            assert!(counterexample.is_some());
            assert!(witness.is_some());
        }
        other => panic!("expected NotContained, got {other:?}"),
    }
}

/// E3 — Example 5.2 / Theorem 5.1: the reduction from (Max-)IIP to containment
/// with an acyclic containing query.
#[test]
fn example_5_2_reduction() {
    let mut expr = EntropyExpr::zero();
    expr.add_term(int(1), ["X1"]);
    expr.add_term(int(2), ["X2"]);
    expr.add_term(int(1), ["X3"]);
    expr.add_term(int(-1), ["X1", "X2"]);
    expr.add_term(int(-1), ["X2", "X3"]);
    let inequality = LinearInequality::new(vec!["X1".into(), "X2".into(), "X3".into()], expr);
    // Eq. (19) is a Shannon inequality.
    assert!(check_linear_inequality(&inequality).is_valid());

    // Uniformize (Lemma 5.3): q = 3 as in Eq. (20).
    let uniform = bqc_iip::uniformize(&inequality.to_max(), "U");
    uniform.validate().unwrap();
    assert_eq!(uniform.q, 3);

    // Build the queries (Section 5.3): Q2 is acyclic, Q1 has 3 adorned copies.
    let reduction = max_iip_to_containment(&uniform);
    assert_eq!(reduction.copies, 3);
    let hypergraph = Hypergraph::new(reduction.q2.hyperedges());
    assert!(hypergraph.is_alpha_acyclic());
    // The paper's Q1 has 9 variables over X1..X3; ours additionally carries the
    // split distinguished variable, giving 5 base variables per copy.
    assert_eq!(reduction.q1.num_vars(), 15);
}

/// E4 — Example B.4 / Fact B.5 / Corollary B.8: the parity function.
#[test]
fn example_b_4_parity() {
    let relation = parity_relation(["X", "Y", "Z"]);
    assert_eq!(relation.len(), 4);
    assert!(relation.is_totally_uniform());
    let empirical = relation_entropy(&relation);
    assert!((empirical.value_of(["X"]) - 1.0).abs() < 1e-9);
    assert!((empirical.value_of(["X", "Y"]) - 2.0).abs() < 1e-9);
    assert!((empirical.value_of(["X", "Y", "Z"]) - 2.0).abs() < 1e-9);

    let parity = SetFunction::from_values(
        vec!["X".into(), "Y".into(), "Z".into()],
        vec![
            int(0),
            int(1),
            int(1),
            int(2),
            int(1),
            int(2),
            int(2),
            int(2),
        ],
    );
    assert!(is_polymatroid(&parity));
    assert!(!is_normal(&parity));
    // The Möbius inverse matches the table in Appendix B.
    let g = parity.mobius_inverse();
    assert_eq!(g[0b000], int(1));
    assert_eq!(g[0b111], int(2));
    for single in [0b001, 0b010, 0b100] {
        assert_eq!(g[single], int(-1));
    }
}

/// E5 — Example C.4 / Theorem C.3: normalizing the parity function.
#[test]
fn example_c_4_normalization() {
    let parity = SetFunction::from_values(
        vec!["X".into(), "Y".into(), "Z".into()],
        vec![
            int(0),
            int(1),
            int(1),
            int(2),
            int(1),
            int(2),
            int(2),
            int(2),
        ],
    );
    let normalized = normalize(&parity);
    assert!(is_normal(&normalized));
    assert!(normalized.dominated_by(&parity));
    // Properties (2) and (3) of Theorem C.3.
    assert_eq!(
        normalized.value(parity.full_mask()),
        parity.value(parity.full_mask())
    );
    for v in ["X", "Y", "Z"] {
        assert_eq!(normalized.value_of([v]), parity.value_of([v]));
    }
    // Exactly one of the pair values drops from 2 to 1 (which one depends on
    // the elimination order), matching the figure in Example C.4.
    let pair_values: Vec<_> = [0b011u32, 0b101, 0b110]
        .iter()
        .map(|&mask| normalized.value(mask).clone())
        .collect();
    assert_eq!(pair_values.iter().filter(|v| **v == int(1)).count(), 1);
    assert_eq!(pair_values.iter().filter(|v| **v == int(2)).count(), 2);
}

/// E6 — Example A.2: the Boolean reduction of the Chaudhuri–Vardi queries.
#[test]
fn example_a_2_boolean_reduction() {
    let q1 = parse_query("Q1(x, z) :- P(x), S(u, x), S(v, z), R(z)").unwrap();
    let q2 = parse_query("Q2(x, z) :- P(x), S(u, y), S(v, y), R(z)").unwrap();
    let (b1, b2) = bqc_core::boolean_reduction(&q1, &q2).unwrap();
    assert!(b1.is_boolean());
    assert!(b2.is_boolean());
    // The bag-set answers relate as in the proof of Lemma A.1: summing the
    // grouped counts equals the Boolean count over the database extended with
    // full unary relations.
    let db = parse_structure("P(1). P(2). S(1,1). S(2,1). S(1,2). R(2). R(1).").unwrap();
    let answers1 = bag_set_answer(&q1, &db);
    let total: u128 = answers1.values().sum();
    let mut extended = db.clone();
    for value in db.active_domain() {
        extended.add_fact("U1", vec![value.clone()]);
        extended.add_fact("U2", vec![value.clone()]);
    }
    assert_eq!(count_homomorphisms(&b1, &extended), total);
}

/// E7 — Example E.2: the locality property fails for the (non-normal) parity
/// relation, which is why Lemma E.1 needs normal counterexamples.
#[test]
fn example_e_2_locality_failure() {
    // Q1 = Q2 = R(X1,X2), S(X2,X3), T(X3,X1) (identical, hence contained).
    let q1 = parse_query("Q1() :- R(x1,x2), S(x2,x3), T(x3,x1)").unwrap();
    // The parity relation P over columns x1,x2,x3.
    let p = parity_relation(["x1", "x2", "x3"]);
    let d = p.induced_database(&q1);
    // Each relation of D is the full 2x2 square {0,1}^2.
    assert_eq!(d.num_facts("R"), 4);
    assert_eq!(d.num_facts("S"), 4);
    assert_eq!(d.num_facts("T"), 4);
    // hom(Q2, D) contains assignments that are in no single row of P: the paper
    // points at (1,1,1).  Concretely |hom| = 8 > |P| = 4.
    assert_eq!(count_homomorphisms(&q1, &d), 8);
    assert_eq!(p.len(), 4);
    // (So P is *not* a witness against containment here — consistent with the
    //  queries being identical.)
    assert!(verify_witness(&q1, &q1, &p).is_none());
}
