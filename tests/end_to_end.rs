//! Cross-crate integration tests: the full pipeline from parsed queries
//! through the containment inequality, the Shannon-cone LP, witness
//! extraction and back to concrete databases.

use bag_query_containment::prelude::*;
use bqc_core::{count_homomorphisms_acyclic, dom_to_containment, saturate_pair};

/// The decision procedure never contradicts evaluation on concrete databases:
/// whenever it answers "contained", spot-check the counts on a family of
/// databases; whenever it answers "not contained" with a witness, the witness
/// counts must hold.
#[test]
fn decisions_are_consistent_with_evaluation() {
    let instances = [
        (
            "Q1() :- R(x,y), R(y,z), R(z,x)",
            "Q2() :- R(u,v), R(u,w)",
            true,
        ),
        ("Q1() :- R(x,y), S(x,y)", "Q2() :- R(u,v)", true),
        ("Q1() :- R(x,y), R(y,x)", "Q2() :- R(u,v)", true),
        ("Q1() :- R(x,y), R(y,z)", "Q2() :- R(u,v)", false),
        (
            "Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')",
            "Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)",
            false,
        ),
    ];
    let test_databases = [
        "R(1,2). R(2,3). R(3,1). S(1,2). A(1,1). B(1,1). C(1,1).",
        "R(1,1). S(1,1). A(1,2). B(1,3). C(4,2).",
        "R(1,2). R(2,1). R(1,3). S(2,1). S(1,2). A(1,1). A(2,2). B(1,1). B(2,2). C(1,1). C(2,2).",
    ];
    for (t1, t2, expected_contained) in instances {
        let q1 = parse_query(t1).unwrap();
        let q2 = parse_query(t2).unwrap();
        let answer = decide_containment(&q1, &q2).unwrap();
        assert_eq!(
            answer.is_contained(),
            expected_contained,
            "unexpected answer for {t1} ⊑ {t2}"
        );
        match answer {
            ContainmentAnswer::Contained { .. } => {
                for facts in test_databases {
                    let db = parse_structure(facts).unwrap();
                    assert!(
                        count_homomorphisms(&q1, &db) <= count_homomorphisms(&q2, &db),
                        "containment violated on {facts} for {t1} ⊑ {t2}"
                    );
                }
            }
            ContainmentAnswer::NotContained { witness, .. } => {
                if let Some(witness) = witness {
                    assert!(witness.hom_q1 > witness.hom_q2);
                    // Re-count from scratch on the recorded database.
                    let d = &witness.database;
                    let recount_1 = count_homomorphisms(&q1, d);
                    let recount_2 = count_homomorphisms(&q2, d);
                    // The recorded counts may refer to the saturated queries;
                    // the original pair must still separate.
                    if recount_1 <= recount_2 {
                        let (s1, s2) = saturate_pair(&q1, &q2);
                        assert!(
                            count_homomorphisms(&s1, d) > count_homomorphisms(&s2, d),
                            "witness database does not separate the queries"
                        );
                    }
                }
            }
            ContainmentAnswer::Unknown { .. } => panic!("instance unexpectedly undecided"),
        }
    }
}

/// The sufficient condition of Theorem 4.2 with the trivial single-bag
/// decomposition is weaker than with a junction tree, but never unsound.
#[test]
fn single_bag_sufficient_condition_is_sound() {
    let q1 = parse_query("Q1() :- R(x,y), R(y,z), R(z,x)").unwrap();
    let q2 = parse_query("Q2() :- R(u,v), R(u,w)").unwrap();
    let single = TreeDecomposition::single_bag(q2.var_set());
    if sufficient_containment_check(&q1, &q2, &single) {
        // If it fires, containment must really hold (it does for this pair).
        for facts in ["R(1,2). R(2,3). R(3,1).", "R(1,1)."] {
            let db = parse_structure(facts).unwrap();
            assert!(count_homomorphisms(&q1, &db) <= count_homomorphisms(&q2, &db));
        }
    }
}

/// DOM (structure domination) agrees with query containment through the
/// structure ↔ query correspondence of Section 2.2.
#[test]
fn dom_and_containment_agree() {
    // A = directed 2-cycle, B = single edge: A is dominated by B
    // (hom(A,D) counts back-and-forth pairs, always at most the edge count).
    let a = parse_structure("E(p, q). E(q, p).").unwrap();
    let b = parse_structure("E(s, t).").unwrap();
    let (qa, qb) = dom_to_containment(&a, &b).unwrap();
    let answer = decide_containment(&qa, &qb).unwrap();
    assert!(answer.is_contained());
    // And B is not dominated by A.
    let reverse = decide_containment(&qb, &qa).unwrap();
    assert!(reverse.is_not_contained());
}

/// The two homomorphism counters agree on acyclic queries, including through
/// the bag-set (group-by) evaluation.
#[test]
fn counters_agree_and_group_by_sums_match() {
    let boolean = parse_query("Q() :- Orders(c,p), Stock(p,w)").unwrap();
    let grouped = parse_query("Q(c) :- Orders(c,p), Stock(p,w)").unwrap();
    let db = parse_structure(
        "Orders(a, x). Orders(a, y). Orders(b, x). Stock(x, w1). Stock(x, w2). Stock(y, w1).",
    )
    .unwrap();
    let total = count_homomorphisms(&boolean, &db);
    assert_eq!(count_homomorphisms_acyclic(&boolean, &db), Some(total));
    let per_group = bag_set_answer(&grouped, &db);
    assert_eq!(per_group.values().sum::<u128>(), total);
    assert_eq!(per_group[&vec![Value::text("a")]], 3);
    assert_eq!(per_group[&vec![Value::text("b")]], 2);
}

/// Witness extraction produces databases that genuinely separate the queries,
/// across a small family of not-contained instances.
#[test]
fn extracted_witnesses_separate_queries() {
    let instances = [
        ("Q1() :- R(x,y), R(y,z)", "Q2() :- R(u,v), R(u,w)"),
        ("Q1() :- R(x,y), R(z,y)", "Q2() :- R(u,v), R(v,w)"),
    ];
    for (t1, t2) in instances {
        let q1 = parse_query(t1).unwrap();
        let q2 = parse_query(t2).unwrap();
        match decide_containment(&q1, &q2).unwrap() {
            ContainmentAnswer::NotContained { witness, .. } => {
                if let Some(witness) = witness {
                    assert!(
                        witness.hom_q1 > witness.hom_q2,
                        "witness does not separate {t1} and {t2}"
                    );
                }
            }
            ContainmentAnswer::Contained { .. } => {
                // If the procedure says contained, verify on a brutal little
                // database to make sure it is not lying.
                let db = parse_structure("R(1,1). R(1,2). R(2,1). R(2,2).").unwrap();
                assert!(count_homomorphisms(&q1, &db) <= count_homomorphisms(&q2, &db));
            }
            ContainmentAnswer::Unknown { .. } => {}
        }
    }
}

/// Bag-set evaluation of a non-Boolean query is exactly COUNT(*) GROUP BY.
#[test]
fn bag_set_semantics_matches_sql_group_by() {
    let q = parse_query("Q(x) :- R(x,y), R(y,z)").unwrap();
    let db = parse_structure("R(1,2). R(2,3). R(2,4). R(3,1).").unwrap();
    let answer = bag_set_answer(&q, &db);
    // Vertex 1 starts paths 1->2->3 and 1->2->4; vertex 2 starts 2->3->1;
    // vertex 3 starts 3->1->2.
    assert_eq!(answer[&vec![Value::int(1)]], 2);
    assert_eq!(answer[&vec![Value::int(2)]], 1);
    assert_eq!(answer[&vec![Value::int(3)]], 1);
    assert_eq!(answer.get(&vec![Value::int(4)]), None);
}
