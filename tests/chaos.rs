#![cfg(feature = "failpoints")]
//! The failpoint-driven chaos suite.
//!
//! Run with the failpoint table compiled in:
//!
//! ```text
//! cargo test --features failpoints --test chaos
//! ```
//!
//! Each test exercises a fault interleaving the design claims to survive
//! (ARCHITECTURE.md § Resource governance, docs/OPERATIONS.md § Budgets and
//! degraded answers):
//!
//! * a panic injected into a pipeline stage is contained to that one
//!   request — the engine, the daemon and every concurrent connection keep
//!   serving, and the poisoned pair can be re-asked;
//! * a `kill -9` (via `abort` failpoints inside `write_snapshot_file`) at
//!   any moment of a snapshot write leaves a loadable snapshot — the old one
//!   or the new one, never a torn file;
//! * a deadline-exceeded request degrades to
//!   `ok verdict=unknown obstruction=resource-exhausted` over the wire and
//!   at the CLI, quickly, and a generous budget changes no verdict.
//!
//! In-process tests arm the process-global failpoint table and must not
//! overlap each other (`FAILPOINTS` mutex).  Subprocess tests configure
//! their `bqc` children through the `BQC_FAILPOINTS` environment variable
//! instead and need no serialization.

use bag_query_containment::core::AnswerSummary;
use bag_query_containment::engine::{load_or_quarantine, Engine, EngineOptions, LoadOutcome};
use bag_query_containment::obs::failpoints;
use bag_query_containment::obs::FailAction;
use bag_query_containment::relational::{parse_query, ConjunctiveQuery};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static FAILPOINTS: Mutex<()> = Mutex::new(());

fn q(text: &str) -> ConjunctiveQuery {
    parse_query(text).expect("test query parses")
}

/// cycle_7 ⊑ path_6 in workload pair syntax: containment holds, every cheap
/// screen passes through, and the Γ_7 LP decides — heavy enough that a 10ms
/// deadline always fires first in a test-profile build.
fn gamma7_pair_line() -> &'static str {
    "Q1() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x6), R(x6,x7), R(x7,x1) ; \
     Q2() :- R(y1,y2), R(y2,y3), R(y3,y4), R(y4,y5), R(y5,y6), R(y6,y7)"
}

fn bqc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bqc"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bqc-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating chaos temp dir");
    dir
}

/// A spawned `bqc serve` child.  Its stdin stays piped (and open) for the
/// child's lifetime, so merely dropping this struct makes an abandoned
/// daemon shut itself down on stdin EOF.
struct ServeChild {
    child: Child,
    addr: String,
}

impl ServeChild {
    fn spawn(extra_args: &[&str], failpoints: Option<&str>) -> ServeChild {
        let mut cmd = bqc();
        cmd.arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(spec) = failpoints {
            cmd.env("BQC_FAILPOINTS", spec);
        }
        let mut child = cmd.spawn().expect("spawning bqc serve");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout);
        let mut line = String::new();
        let addr = loop {
            line.clear();
            if lines.read_line(&mut line).expect("reading serve stdout") == 0 {
                panic!("bqc serve exited before announcing its address");
            }
            if let Some(rest) = line.trim().strip_prefix("bqc serve: listening on ") {
                break rest.to_string();
            }
        };
        // Keep draining stdout so the child can never block on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while lines.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
        });
        ServeChild { child, addr }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connecting to bqc serve");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("setting read timeout");
        let reader = BufReader::new(stream.try_clone().expect("cloning stream"));
        let mut conn = Conn { stream, reader };
        let banner = conn.read_line();
        assert!(
            banner.starts_with("ok bqc-serve proto="),
            "banner: {banner}"
        );
        conn
    }

    /// Closes stdin (the graceful-shutdown request) and reaps the child.
    /// For children that already died at a failpoint this just reaps.
    fn shutdown_and_wait(mut self) -> std::process::ExitStatus {
        drop(self.child.stdin.take());
        self.child.wait().expect("waiting for bqc serve")
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    /// One request/response round trip.  `Ok("")` means the server closed
    /// the connection (EOF) — expected when a failpoint killed it.
    fn try_request(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply)?;
        Ok(reply.trim_end().to_string())
    }

    fn request(&mut self, line: &str) -> String {
        self.try_request(line).expect("request round trip")
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reading response");
        line.trim_end().to_string()
    }
}

/// Satellite regression test: after a contained stage panic, the *next*
/// batch on the same engine is fully served — no poisoned lock, no tainted
/// worker context, no cached error.
#[test]
fn engine_survives_a_contained_stage_panic_and_serves_the_next_batch() {
    let _guard = FAILPOINTS
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    failpoints::clear_all();
    let engine = Engine::new(EngineOptions {
        workers: 1,
        ..EngineOptions::default()
    });
    let batch = vec![
        (
            q("Q1() :- R(x,y), R(y,z), R(z,x)"),
            q("Q2() :- R(u,v), R(u,w)"),
        ),
        (q("A() :- S(x,y)"), q("B() :- S(u,v)")),
        (q("C() :- T(x,y), T(y,z)"), q("D() :- T(u,v), T(v,w)")),
    ];

    failpoints::set("pipeline::stage", FailAction::Panic { remaining: Some(1) });
    let first = engine.decide_batch(&batch);
    failpoints::clear_all();

    let panicked: Vec<usize> = first
        .iter()
        .enumerate()
        .filter(|(_, r)| r.answer.is_err())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        panicked.len(),
        1,
        "exactly one request absorbs the injected panic: {first:?}"
    );
    let message = first[panicked[0]].answer.as_ref().unwrap_err().to_string();
    assert!(
        message.contains("panicked") && message.contains("failpoint pipeline::stage hit"),
        "the error names the contained panic: {message}"
    );
    assert_eq!(engine.fault_stats().panics, 1);

    let second = engine.decide_batch(&batch);
    let healed: Vec<AnswerSummary> = second
        .into_iter()
        .map(|r| r.answer.expect("fully served after containment"))
        .collect();
    let clean: Vec<AnswerSummary> = Engine::default()
        .decide_batch(&batch)
        .into_iter()
        .map(|r| r.answer.expect("clean engine decides"))
        .collect();
    assert_eq!(healed, clean, "verdicts match an untouched engine");
}

/// Acceptance: an injected stage panic answers `error decide` for the
/// poisoned pair while the daemon — and a concurrent connection — keep
/// serving correct answers; the pair can be re-asked because contained
/// panics are never cached.
#[test]
fn serve_keeps_serving_through_an_injected_stage_panic() {
    let server = ServeChild::spawn(&[], Some("pipeline::stage=panic(1)"));
    let mut poisoned = server.connect();
    let mut healthy = server.connect();

    let triangle_in_star = "Q1() :- R(x,y), R(y,z), R(z,x) ; Q2() :- R(u,v), R(u,w)";
    let reply = poisoned.request(triangle_in_star);
    assert!(
        reply.starts_with("error decide") && reply.contains("panicked"),
        "the poisoned pair answers error decide: {reply}"
    );

    let ok = healthy.request("A() :- S(x,y) ; B() :- S(u,v)");
    assert!(
        ok.starts_with("ok verdict=contained"),
        "a concurrent connection is served correctly: {ok}"
    );

    let retry = poisoned.request(triangle_in_star);
    assert!(
        retry.starts_with("ok verdict=contained"),
        "re-asking the poisoned pair succeeds (never cached): {retry}"
    );

    let stats = poisoned.request("!stats");
    assert!(stats.contains(" panics=1"), "the panic is counted: {stats}");

    assert!(server.shutdown_and_wait().success());
}

/// A panic in the batcher itself (injected at the `serve::batch` failpoint,
/// upstream of the engine's own containment) fails only that micro-batch
/// with `error decide batch panicked`; the daemon keeps serving.
#[test]
fn a_batcher_panic_fails_only_that_batch() {
    let server = ServeChild::spawn(&[], Some("serve::batch=panic(1)"));
    let mut conn = server.connect();

    let reply = conn.request("A() :- S(x,y) ; B() :- S(u,v)");
    assert_eq!(reply, "error decide batch panicked; request not decided");

    let retry = conn.request("A() :- S(x,y) ; B() :- S(u,v)");
    assert!(
        retry.starts_with("ok verdict=contained"),
        "the next batch is served: {retry}"
    );

    assert!(server.shutdown_and_wait().success());
}

/// Acceptance: a deadline-exceeded request answers
/// `ok verdict=unknown obstruction=resource-exhausted` over the wire, and
/// the same daemon still gives cheap requests their real verdict.
#[test]
fn deadline_exceeded_requests_degrade_over_the_wire() {
    let server = ServeChild::spawn(&["--request-deadline-ms", "10"], None);
    let mut conn = server.connect();

    let reply = conn.request(gamma7_pair_line());
    assert!(
        reply.starts_with("ok verdict=unknown obstruction=resource-exhausted resource=deadline"),
        "Γ_7-scale request degrades under a 10ms deadline: {reply}"
    );

    let ok = conn.request("A() :- S(x,y) ; B() :- S(u,v)");
    assert!(
        ok.starts_with("ok verdict=contained"),
        "a cheap request on the same daemon finishes within budget: {ok}"
    );

    let stats = conn.request("!stats");
    assert!(
        stats.contains(" budget-exhausted=1"),
        "the degraded answer is counted and excluded from the cache: {stats}"
    );

    assert!(server.shutdown_and_wait().success());
}

/// Acceptance: `bqc --deadline-ms 10` on a cold Γ_7-scale workload returns
/// promptly with a resource-exhausted `unknown` (`--fail-on unknown` gates
/// it), and `--max-pivots` degrades the same way.
#[test]
fn the_cli_budget_flags_degrade_a_gamma7_scale_workload() {
    let dir = temp_dir("cli-deadline");
    let file = dir.join("gamma7.bqc");
    std::fs::write(&file, format!("{}\n", gamma7_pair_line())).expect("writing workload");

    let start = Instant::now();
    let out = bqc()
        .args(["--deadline-ms", "10", "--fail-on", "unknown"])
        .arg(&file)
        .output()
        .expect("running bqc");
    let elapsed = start.elapsed();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(3),
        "the degraded verdict trips --fail-on unknown: {stdout}"
    );
    assert!(
        stdout.contains("undecided: deadline budget exhausted"),
        "{stdout}"
    );
    // Far looser than the ~10ms the decision itself takes, but still orders
    // of magnitude below an unbudgeted Γ_7 solve in a test-profile build:
    // the budget demonstrably cut the decision short.
    assert!(elapsed < Duration::from_secs(30), "took {elapsed:?}");

    let out = bqc()
        .args(["--max-pivots", "1", "--fail-on", "unknown"])
        .arg(&file)
        .output()
        .expect("running bqc");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(3), "{stdout}");
    assert!(
        stdout.contains("undecided: pivots budget exhausted"),
        "{stdout}"
    );
}

/// A generous budget arms every check but never fires: verdicts across the
/// smoke workload (contained, refuted, deduped) are identical to the
/// unbudgeted run's.
#[test]
fn a_generous_budget_does_not_change_any_verdict() {
    let verdicts = |args: &[&str]| -> Vec<String> {
        let out = bqc()
            .arg("--json")
            .args(args)
            .arg("examples/workloads/smoke.bqc")
            .output()
            .expect("running bqc");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        text.match_indices("\"verdict\": \"")
            .map(|(at, token)| {
                let rest = &text[at + token.len()..];
                rest[..rest.find('"').expect("closing quote")].to_string()
            })
            .collect()
    };
    let plain = verdicts(&[]);
    let budgeted = verdicts(&["--deadline-ms", "600000", "--max-pivots", "1000000000"]);
    assert!(!plain.is_empty(), "the smoke workload reports verdicts");
    assert_eq!(budgeted, plain);
}

/// Satellite torture test: a `bqc serve` child is killed (abort — the
/// kill -9 stand-in, no unwinding, no cleanup) at rotating moments inside
/// `write_snapshot_file` — mid payload write, before fsync, before the
/// atomic rename — across 100 rounds.  After every kill the snapshot on
/// disk must load cleanly: the old one (kill before rename) or the new one
/// (clean round), never a torn file, never a quarantine.
#[test]
fn sigkill_during_snapshot_always_leaves_a_loadable_snapshot() {
    let dir = temp_dir("snapshot-torture");
    let snapshot = dir.join("decisions.snap");
    let snapshot_arg = snapshot.to_str().expect("utf-8 temp path").to_string();

    // Seed the first valid snapshot with a clean run.
    {
        let server = ServeChild::spawn(&["--snapshot", &snapshot_arg], None);
        let mut conn = server.connect();
        assert!(conn
            .request("A0() :- S0(x,y) ; B0() :- S0(u,v)")
            .starts_with("ok "));
        assert!(conn.request("!snapshot").starts_with("ok snapshot"));
        assert!(server.shutdown_and_wait().success());
    }
    assert!(matches!(
        load_or_quarantine(&snapshot),
        LoadOutcome::Loaded(_)
    ));

    const KILLS: [Option<&str>; 4] = [
        Some("persist::mid-write=abort"),
        Some("persist::pre-fsync=abort"),
        Some("persist::pre-rename=abort"),
        None, // every fourth round survives, refreshing the "old" snapshot
    ];
    for round in 0..100 {
        let kill = KILLS[round % KILLS.len()];
        let server = ServeChild::spawn(&["--snapshot", &snapshot_arg], kill);
        let mut conn = server.connect();
        // A fresh cache entry per round, so every snapshot write has new
        // bytes to tear.
        let line = format!("A{round}() :- S{round}(x,y) ; B{round}() :- S{round}(u,v)");
        assert!(conn.request(&line).starts_with("ok "), "round {round}");
        match conn.try_request("!snapshot") {
            Ok(reply) if kill.is_none() => {
                assert!(reply.starts_with("ok snapshot"), "round {round}: {reply}")
            }
            // Armed rounds: the child aborted mid-write, so EOF ("") or a
            // connection reset are both the expected outcome.
            _ => {}
        }
        let status = server.shutdown_and_wait();
        match kill {
            None => assert!(status.success(), "round {round}: clean shutdown"),
            Some(spec) => assert!(
                !status.success(),
                "round {round}: the armed failpoint `{spec}` must have killed the child"
            ),
        }
        match load_or_quarantine(&snapshot) {
            LoadOutcome::Loaded(_) => {}
            other => panic!("round {round} ({kill:?}) left an unloadable snapshot: {other:?}"),
        }
    }
}
