//! The adversarial-corpus runner: every `examples/corpus/*.bqc` case must
//! produce its checked-in `EXPECT:` verdict, every checked-in `WITNESS:`
//! must separate by explicit counting (Fact 3.2), and every verdict must
//! survive the differential oracle's database-family replay.
//!
//! Corpus cases are regression pins: each one was once interesting — a
//! worked example from the paper, a boundary of the decidable class, or a
//! minimized `bqc fuzz` finding — and this runner keeps them all honest on
//! every `cargo test`.

use bag_query_containment::core::oracle::{check_summary, count_violation};
use bag_query_containment::engine::{parse_corpus, CorpusCase, ExpectedVerdict};
use bag_query_containment::prelude::*;
use bqc_bench::families::{database_family, FamilyConfig};
use std::path::PathBuf;

/// Every corpus file checked into `examples/corpus/`.  Kept explicit so a
/// new file must be added here (and a stale path fails loudly) instead of
/// silently riding on a directory glob.
const CORPUS_FILES: &[&str] = &[
    "examples/corpus/paper_examples.bqc",
    "examples/corpus/boolean_reduction.bqc",
    "examples/corpus/single_bag_fallback.bqc",
    "examples/corpus/near_miss.bqc",
];

fn load(path: &str) -> Vec<CorpusCase> {
    let full = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(path);
    let text = std::fs::read_to_string(&full)
        .unwrap_or_else(|e| panic!("cannot read corpus file {}: {e}", full.display()));
    parse_corpus(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// The directory is explicit in `CORPUS_FILES`; make sure nothing new
/// appeared on disk without being listed (a file a glob would pick up but
/// this runner would silently skip).
#[test]
fn corpus_directory_is_fully_listed() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/corpus");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/corpus exists")
        .map(|entry| entry.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".bqc"))
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = CORPUS_FILES
        .iter()
        .map(|p| p.rsplit('/').next().unwrap().to_string())
        .collect();
    listed.sort();
    assert_eq!(on_disk, listed, "corpus files on disk vs CORPUS_FILES");
}

#[test]
fn corpus_is_large_enough() {
    let total: usize = CORPUS_FILES.iter().map(|p| load(p).len()).sum();
    assert!(
        total >= 20,
        "adversarial corpus holds {total} cases, want >= 20"
    );
}

/// Every case produces its expected verdict, and each checked-in witness
/// separates by explicit counting — independent of the engine that once
/// produced the verdict.
#[test]
fn corpus_verdicts_and_witnesses_hold() {
    // Witness materialization is skipped: the corpus pins verdicts, and the
    // checked-in WITNESS databases are verified by direct counting below
    // (some headed refutations take seconds to *search* a witness for, but
    // microseconds to *check* one).
    let options = DecideOptions {
        extract_witness: false,
        ..DecideOptions::default()
    };
    for path in CORPUS_FILES {
        for case in load(path) {
            let at = format!("{path}:{} ({} ; {})", case.line, case.q1, case.q2);
            let answer = decide_containment_with(&case.q1, &case.q2, &options)
                .unwrap_or_else(|e| panic!("{at}: decision error {e}"));
            let summary = answer.summary();
            let ok = match case.expect {
                ExpectedVerdict::Contained => summary.is_contained(),
                ExpectedVerdict::NotContained => summary.is_not_contained(),
                ExpectedVerdict::Unknown => summary.is_unknown(),
            };
            assert!(
                ok,
                "{at}: expected {}, engine answered {summary}",
                case.expect
            );
            if let Some(witness) = &case.witness {
                let violation = count_violation(&case.q1, &case.q2, witness)
                    .unwrap_or_else(|d| panic!("{at}: witness counting disagreed: {d}"))
                    .unwrap_or_else(|| panic!("{at}: checked-in WITNESS does not separate"));
                assert!(violation.hom_q1 > violation.hom_q2, "{at}: witness counts");
            }
        }
    }
}

/// The differential oracle replays every corpus verdict against the
/// generated database family: a `contained` verdict must never be
/// contradicted by explicit counts, and `unknown` obstructions must match
/// a fresh recomputation.
#[test]
fn corpus_survives_the_differential_oracle() {
    let options = DecideOptions {
        extract_witness: false,
        ..DecideOptions::default()
    };
    let config = FamilyConfig::default();
    for path in CORPUS_FILES {
        for case in load(path) {
            let at = format!("{path}:{} ({} ; {})", case.line, case.q1, case.q2);
            let answer = decide_containment_with(&case.q1, &case.q2, &options)
                .unwrap_or_else(|e| panic!("{at}: decision error {e}"));
            let family = database_family(&case.q1, &case.q2, &config);
            let report = check_summary(&case.q1, &case.q2, answer.summary(), &family);
            assert!(
                report.ok(),
                "{at}: differential oracle found {:?}",
                report.discrepancies
            );
        }
    }
}
