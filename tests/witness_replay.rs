//! Witness-replay regression tests: every `not contained` verdict across
//! the shipped workloads must come with (or be confirmable by) an explicit
//! counting separation — `|Q1(W)| > |Q2(W)|` on a concrete database,
//! re-counted by the differential oracle's independent evaluators
//! (Fact 3.2: one such database is an unconditional refutation).

use bag_query_containment::core::oracle::{check_answer, replay_witness};
use bag_query_containment::engine::parse_workload;
use bag_query_containment::prelude::*;
use bqc_bench::families::{database_family, FamilyConfig};
use std::path::PathBuf;

const WORKLOADS: &[&str] = &[
    "examples/workloads/smoke.bqc",
    "examples/workloads/refutable.bqc",
];

/// Worked examples from the paper whose refuting direction must replay.
const PAPER_PAIRS: &[(&str, &str)] = &[
    // Example 4.3 reversed: star vs triangle.
    ("Q1() :- R(u,v), R(u,w)", "Q2() :- R(x,y), R(y,z), R(z,x)"),
    // Example 3.5: parallel blocks vs the spread query.
    (
        "Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')",
        "Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)",
    ),
    // The 5-cycle vs the 2-out-star.
    (
        "Q1() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1)",
        "Q2() :- R(y1,y2), R(y1,y3)",
    ),
];

fn replay(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, at: &str) -> usize {
    let answer = decide_containment(q1, q2).unwrap_or_else(|e| panic!("{at}: {e}"));
    if !answer.is_not_contained() {
        return 0;
    }
    // The full differential check: verdict replayed against the generated
    // database family, the materialized witness re-counted independently.
    let family = database_family(q1, q2, &FamilyConfig::default());
    let report = check_answer(q1, q2, &answer, &family);
    assert!(report.ok(), "{at}: oracle found {:?}", report.discrepancies);
    // Every refutation in the shipped workloads and paper examples is small
    // enough for the witness budget: the claim must be concrete, and the
    // oracle's replay must re-derive the claimed counts exactly.
    if let bag_query_containment::core::ContainmentAnswer::NotContained {
        witness: Some(witness),
        ..
    } = &answer
    {
        assert!(witness.hom_q1 > witness.hom_q2, "{at}: witness counts");
        replay_witness(q1, q2, witness).unwrap_or_else(|d| panic!("{at}: {d}"));
    } else {
        // No materialized witness: the family itself must separate, so the
        // refutation never rests on the LP alone.
        assert!(
            report.separated_by.is_some(),
            "{at}: refutation has neither witness nor separating family member"
        );
    }
    1
}

#[test]
fn every_workload_refutation_replays() {
    let mut refutations = 0;
    for path in WORKLOADS {
        let full = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(path);
        let text = std::fs::read_to_string(&full)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", full.display()));
        for entry in parse_workload(&text).unwrap_or_else(|e| panic!("{path}: {e}")) {
            let at = format!("{path}:{}", entry.line);
            refutations += replay(&entry.q1, &entry.q2, &at);
        }
    }
    // The workloads are built around refutations; an empty count means this
    // test silently stopped testing anything.
    assert!(refutations >= 3, "only {refutations} refutations replayed");
}

#[test]
fn every_paper_refutation_replays() {
    for (q1, q2) in PAPER_PAIRS {
        let q1 = parse_query(q1).unwrap();
        let q2 = parse_query(q2).unwrap();
        let at = format!("{q1} ; {q2}");
        assert_eq!(replay(&q1, &q2, &at), 1, "{at}: expected a refutation");
    }
}
